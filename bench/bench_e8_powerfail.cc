// E8 — Power-failure durability campaign (the plug-pull experiment).
//
// Repeated randomised mains cuts under load, with recovery and verification
// after each: RapiLog and native synchronous logging must never lose an
// acknowledged transaction; asynchronous commit loses them by design; and
// the --ablation arm (RapiLog with its PowerGuard disabled) shows the guard
// is what makes the buffered scheme safe.
#include <cstdio>
#include <algorithm>
#include <cstring>

#include "bench/bench_common.h"
#include "src/faults/durability_checker.h"
#include "src/workload/kv_workload.h"

namespace {

using rlbench::Fmt;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

struct CampaignResult {
  int trials = 0;
  int trials_with_loss = 0;
  uint64_t lost_writes = 0;
  uint64_t atomicity_violations = 0;
  uint64_t keys_checked = 0;
};

CampaignResult RunCampaign(DeploymentMode mode, bool power_guard,
                           bool overstated_budget, int trials,
                           uint64_t seed) {
  Simulator sim(seed);
  rlharness::TestbedOptions opts = rlbench::DefaultTestbed(
      mode, DiskSetup::kSharedHdd, rldb::PostgresLikeProfile());
  opts.rapilog.enable_power_guard = power_guard;
  if (!power_guard || overstated_budget) {
    // The ablations run the machine at full PSU load — the ATX-spec 16 ms
    // hold-up — which is the regime where only honest energy math survives.
    // (At light load the window is so generous that even an unguarded drain
    // usually wins; the guard turns "usually" into "always".)
    opts.psu.system_load_watts = 390;
  }
  if (!power_guard) {
    // Without the guard the budget is meaningless; give the buffer room so
    // the failure mode is visible.
    opts.rapilog.max_buffer_bytes_override = 8ull * 1024 * 1024;
  }
  if (overstated_budget) {
    // Dishonest energy math: claims a 10x faster drain and no start-up
    // latency, so the admission control buffers more than the hold-up
    // window can flush.
    opts.rapilog.worst_case_drain_mbps = 400.0;
    opts.rapilog.drain_start_reserve = Duration::Zero();
  }
  rlharness::Testbed bed(sim, opts);
  rlwork::KvConfig kv_cfg;
  // Working set much larger than the buffer pool: data-page reads contend
  // with the log drain on the shared spindle, so the RapiLog buffer carries
  // a real backlog when the plug is pulled (the regime where the guard
  // matters).
  kv_cfg.key_space = 200'000;
  kv_cfg.zipf_theta = 0.6;
  kv_cfg.write_fraction = 0.5;
  kv_cfg.think_time = Duration::Micros(50);
  rlwork::KvWorkload kv(sim, kv_cfg);
  rlfault::DurabilityChecker checker;
  CampaignResult campaign;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               rlfault::DurabilityChecker& chk, CampaignResult& out,
               int n_trials) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 50'000);
    rlsim::Rng rng(s.rng().Fork());
    for (int trial = 0; trial < n_trials; ++trial) {
      auto stop = std::make_shared<bool>(false);
      for (int c = 0; c < 8; ++c) {
        s.Spawn(w.RunClient(b.db(), trial * 100 + c, stop.get(), &chk));
      }
      // Run for a random stretch, then pull the plug. The cut is
      // adversarial: when a RapiLog buffer exists we wait for it to carry a
      // real backlog (checkpoint-contention spikes), so the ablations face
      // the worst case — which the guard must survive by construction.
      co_await s.Sleep(Duration::Millis(rng.UniformInt(30, 400)));
      if (b.rapilog() != nullptr) {
        // A backlog worth cutting at: half the arm's admission budget,
        // capped at 1 MiB (the ablation arms run with inflated budgets).
        const uint64_t target = std::min<uint64_t>(
            b.rapilog()->max_buffer_bytes() / 2, 1024 * 1024);
        const rlsim::TimePoint give_up = s.now() + Duration::Seconds(2);
        while (b.rapilog()->buffered_bytes() < target && s.now() < give_up) {
          co_await s.Sleep(Duration::Millis(5));
        }
      }
      b.CutPower();
      *stop = true;
      co_await s.Sleep(Duration::Seconds(1));  // rails drop inside this
      co_await b.RestorePowerAndRecover();
      const auto verdict = co_await chk.VerifyAfterRecovery(b.db());
      ++out.trials;
      out.keys_checked += verdict.keys_checked;
      out.lost_writes += verdict.lost_writes;
      out.atomicity_violations += verdict.atomicity_violations;
      if (!verdict.ok()) {
        ++out.trials_with_loss;
      }
    }
  }(sim, bed, kv, checker, campaign, trials));
  sim.Run();
  return campaign;
}

void Report(Table& table, const char* name, const CampaignResult& r) {
  table.Row({name, Fmt(r.trials, "%.0f"), Fmt(r.keys_checked, "%.0f"),
             Fmt(r.lost_writes, "%.0f"), Fmt(r.atomicity_violations, "%.0f"),
             Fmt(r.trials_with_loss, "%.0f")});
}

}  // namespace

int main(int argc, char** argv) {
  int trials = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      trials = 5;
    }
  }
  PrintHeader("E8: power-cut durability campaign (randomised cut instants)");
  Table table;
  table.Row({"config", "trials", "checked", "lost", "atomicity", "bad-trials"});
  Report(table, "rapilog",
         RunCampaign(DeploymentMode::kRapiLog, true, false, trials, 11));
  Report(table, "native-sync",
         RunCampaign(DeploymentMode::kNative, true, false, trials, 12));
  Report(table, "unsafe-async",
         RunCampaign(DeploymentMode::kUnsafeAsync, true, false, trials, 13));
  Report(table, "rapilog-noguard",
         RunCampaign(DeploymentMode::kRapiLog, false, false, trials, 14));
  Report(table, "rapilog-overbudget",
         RunCampaign(DeploymentMode::kRapiLog, true, true, trials, 15));
  table.Print();
  std::printf(
      "\nExpected shape: zero loss for rapilog and native-sync in every "
      "trial; unsafe-async\nloses acknowledged commits; the ablations "
      "(guard disabled / dishonest energy\nbudget) re-introduce loss.\n");
  return 0;
}

// E11 — Replicated durability: commit latency and replication lag vs link
// latency, for both shipping modes.
//
// A write-heavy KV workload commits against a primary whose log path is
// wrapped by a LogShipper streaming to 3 replicas. The sweep raises the
// one-way link latency and reports:
//   * async       commit latency must stay at the local-disk baseline (the
//                 primary never blocks on the network) while the replication
//                 lag — the durability exposure on total primary loss —
//                 grows with the link;
//   * quorum-ack  commit latency tracks the majority link RTT, and the lag
//                 stays pinned near zero.
//
// Deterministic: the whole run derives from one seed; identical seeds print
// identical tables.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "src/workload/kv_workload.h"

namespace {

using rlbench::Fmt;
using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

enum class Arm { kOff, kAsync, kQuorum };

std::string ToString(Arm arm) {
  switch (arm) {
    case Arm::kOff:
      return "off";
    case Arm::kAsync:
      return "async";
    case Arm::kQuorum:
      return "quorum-ack";
  }
  return "?";
}

struct E11Result {
  double txns_per_sec = 0;
  Duration commit_p50;
  Duration commit_p95;
  int64_t blocks_shipped = 0;
  int64_t retransmits = 0;
  int64_t lag_p50 = 0;   // blocks shipped but not yet quorum-durable
  int64_t lag_max = 0;
  Duration quorum_ack_p50;
  std::string full_stats;  // registry dump, for the appendix print
};

E11Result RunArm(Arm arm, Duration link_latency, uint64_t seed) {
  Simulator sim(seed);
  rlharness::TestbedOptions opts = rlbench::DefaultTestbed(
      DeploymentMode::kNative, DiskSetup::kSsdLog, rldb::PostgresLikeProfile());
  if (arm != Arm::kOff) {
    opts.replication.enabled = true;
    opts.replication.replicas = 3;
    opts.replication.link.base_latency = link_latency;
    opts.replication.link.jitter = link_latency / 10;
    opts.replication.shipper.mode = arm == Arm::kQuorum
                                        ? rlrep::ShipMode::kQuorumAck
                                        : rlrep::ShipMode::kAsync;
  }
  rlharness::Testbed bed(sim, opts);

  rlwork::KvConfig kv_cfg;
  kv_cfg.key_space = 20'000;
  kv_cfg.write_fraction = 0.8;
  kv_cfg.ops_per_txn = 3;
  kv_cfg.think_time = Duration::Micros(200);
  rlwork::KvWorkload kv(sim, kv_cfg);
  E11Result result;

  bool stop = false;
  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               E11Result& out, bool& stop_flag) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 5'000);
    for (int c = 0; c < 8; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
    }
    co_await s.Sleep(Duration::Millis(300));  // warmup
    w.stats().committed.Reset();
    w.stats().txn_latency.Reset();
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(Duration::Seconds(2));
    const double seconds = (s.now() - t0).ToSecondsF();
    stop_flag = true;

    out.txns_per_sec =
        static_cast<double>(w.stats().committed.value()) / seconds;
    out.commit_p50 = w.stats().txn_latency.PercentileDuration(50);
    out.commit_p95 = w.stats().txn_latency.PercentileDuration(95);
    if (b.shipper() != nullptr) {
      const auto& ship = b.shipper()->stats();
      out.blocks_shipped = ship.blocks_shipped.value();
      out.retransmits = ship.retransmits.value();
      out.lag_p50 = ship.lag_blocks.Percentile(50);
      out.lag_max = ship.lag_blocks.empty() ? 0 : ship.lag_blocks.max();
      out.quorum_ack_p50 = ship.quorum_ack_latency.PercentileDuration(50);
      rlsim::StatsRegistry registry;
      b.RegisterReplicationStats(registry);
      out.full_stats = registry.Format();
    }
  }(sim, bed, kv, result, stop));
  sim.Run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42ull;

  PrintHeader("E11: replicated durability (3 replicas, majority = 2)");
  std::printf("seed=%llu; KV 80%% writes, 8 clients, native mode, SSD log\n",
              static_cast<unsigned long long>(seed));
  Table table;
  table.Row({"mode", "link(1-way)", "txn/s", "commit p50", "commit p95",
             "lag p50", "lag max", "q-ack p50", "retrans"});

  std::string appendix;
  for (const Duration link :
       {Duration::Micros(50), Duration::Micros(200), Duration::Millis(1),
        Duration::Millis(5)}) {
    for (const Arm arm : {Arm::kOff, Arm::kAsync, Arm::kQuorum}) {
      if (arm == Arm::kOff && link != Duration::Micros(50)) {
        continue;  // the no-replication baseline has no link to sweep
      }
      const E11Result r = RunArm(arm, link, seed);
      table.Row({ToString(arm), arm == Arm::kOff ? "-" : FmtDur(link),
                 Fmt(r.txns_per_sec, "%.0f"), FmtDur(r.commit_p50),
                 FmtDur(r.commit_p95),
                 arm == Arm::kOff ? "-" : Fmt(static_cast<double>(r.lag_p50),
                                              "%.0f"),
                 arm == Arm::kOff ? "-" : Fmt(static_cast<double>(r.lag_max),
                                              "%.0f"),
                 arm == Arm::kQuorum ? FmtDur(r.quorum_ack_p50) : "-",
                 arm == Arm::kOff ? "-"
                                  : Fmt(static_cast<double>(r.retransmits),
                                        "%.0f")});
      if (arm == Arm::kQuorum && link == Duration::Millis(1)) {
        appendix = r.full_stats;
      }
    }
  }
  table.Print();

  PrintHeader("E11 appendix: full stats registry (quorum-ack, 1 ms link)");
  std::printf("%s", appendix.c_str());
  return 0;
}

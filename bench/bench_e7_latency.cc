// E7 — Transaction latency distribution per deployment mode, decomposed
// stage by stage.
//
// RapiLog's effect in the time domain: synchronous logging puts a
// rotational-latency floor under every commit; RapiLog removes it, so the
// whole distribution shifts left and the tail tightens. The per-stage
// breakdown (guest WAL wait → VMM request → RapiLog buffer ack → physical
// medium write → device flush) shows *where* the floor lives in each mode —
// in native/virt it sits in the medium/flush stages; under RapiLog the
// guest-visible wait collapses onto the buffer-ack cost while the medium
// keeps draining at its own pace.
//
// Flags:
//   --jobs N           run the four arms across N worker threads (output is
//                      byte-identical at any N; each arm is its own sim)
//   --stats-json FILE  machine-readable results (default BENCH_e7.json;
//                      --json is accepted as an alias, matching bench_micro)
//   --trace-out FILE   re-run the rapilog arm with a span tracer, write a
//                      Perfetto-loadable Chrome trace of it, and print the
//                      critical-path breakdown of the traced spans
//   --snapshot-every MS  periodic stats snapshots embedded in the JSON
//                      (default 500 ms of virtual time; 0 disables)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/critical_path.h"
#include "src/obs/span_tracer.h"

namespace {

using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::StageStats;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;

struct Arm {
  const char* name;
  DeploymentMode mode;
};

constexpr Arm kArms[] = {
    {"native", DeploymentMode::kNative},
    {"virt", DeploymentMode::kVirt},
    {"rapilog", DeploymentMode::kRapiLog},
    {"unsafe", DeploymentMode::kUnsafeAsync},
};

rlbench::TpccRunConfig ArmConfig(DeploymentMode mode,
                                 rlsim::Duration snapshot_every) {
  rlbench::TpccRunConfig cfg;
  cfg.testbed = rlbench::DefaultTestbed(mode, DiskSetup::kSharedHdd,
                                        rldb::PostgresLikeProfile());
  cfg.tpcc = rlbench::DefaultTpcc();
  cfg.clients = 16;
  cfg.snapshot_every = snapshot_every;
  return cfg;
}

// "p50 / p95" for a populated stage, "-" for a stage the mode doesn't have.
std::string StageCell(const rlsim::Histogram& h) {
  if (h.empty()) {
    return "-";
  }
  return FmtDur(h.PercentileDuration(50)) + " / " +
         FmtDur(h.PercentileDuration(95));
}

void AddStageMetrics(rlbench::BenchJsonWriter& json, const std::string& arm,
                     const char* stage, const rlsim::Histogram& h) {
  if (h.empty()) {
    return;
  }
  const std::string base = "e7." + arm + ".stage." + stage;
  json.Add(base + ".count", static_cast<double>(h.count()), "ops");
  json.Add(base + ".p50", static_cast<double>(h.Percentile(50)), "ns");
  json.Add(base + ".p95", static_cast<double>(h.Percentile(95)), "ns");
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  std::string json_out = "BENCH_e7.json";
  std::string trace_out;
  int64_t snapshot_ms = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if ((std::strcmp(argv[i], "--stats-json") == 0 ||
                std::strcmp(argv[i], "--json") == 0) &&
               i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 && i + 1 < argc) {
      snapshot_ms = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--stats-json FILE] "
                   "[--trace-out FILE] [--snapshot-every MS]\n",
                   argv[0]);
      return 2;
    }
  }
  const rlsim::Duration snapshot_every = rlsim::Duration::Millis(snapshot_ms);

  std::vector<rlbench::TpccRunConfig> configs;
  for (const Arm& arm : kArms) {
    configs.push_back(ArmConfig(arm.mode, snapshot_every));
  }
  const std::vector<rlbench::RunResult> results =
      rlbench::RunTpccMany(configs, jobs);

  PrintHeader("E7: TPC-C-lite transaction latency, 16 clients, shared HDD, "
              "pg-like");
  Table table;
  table.Row({"mode", "mean", "p50", "p95", "p99"});
  for (size_t i = 0; i < results.size(); ++i) {
    const rlbench::RunResult& r = results[i];
    table.Row({kArms[i].name, FmtDur(r.mean), FmtDur(r.p50), FmtDur(r.p95),
               FmtDur(r.p99)});
  }
  table.Print();

  PrintHeader("E7: per-stage commit-path latency, p50 / p95, steady state");
  Table stages;
  stages.Row({"mode", "guest(wal-wait)", "vmm(vblk-req)", "buffer(rl-ack)",
              "medium(log-write)", "ack(dev-flush)"});
  for (size_t i = 0; i < results.size(); ++i) {
    const StageStats& s = results[i].stages;
    stages.Row({kArms[i].name, StageCell(s.guest_commit_wait),
                StageCell(s.vmm_request), StageCell(s.buffer_ack),
                StageCell(s.medium_write), StageCell(s.device_flush)});
  }
  stages.Print();
  std::printf(
      "\nExpected shape: native/virt guest waits sit on the medium "
      "write+flush floor (~ms);\nrapilog's guest wait collapses onto the "
      "buffer-ack cost while the medium drains\nasynchronously; unsafe shows "
      "the no-durability lower bound.\n");

  rlbench::BenchJsonWriter json;
  for (size_t i = 0; i < results.size(); ++i) {
    const rlbench::RunResult& r = results[i];
    const std::string arm = kArms[i].name;
    json.Add("e7." + arm + ".txns_per_sec", r.txns_per_sec, "txn/s");
    json.Add("e7." + arm + ".mean", static_cast<double>(r.mean.nanos()), "ns");
    json.Add("e7." + arm + ".p50", static_cast<double>(r.p50.nanos()), "ns");
    json.Add("e7." + arm + ".p95", static_cast<double>(r.p95.nanos()), "ns");
    json.Add("e7." + arm + ".p99", static_cast<double>(r.p99.nanos()), "ns");
    AddStageMetrics(json, arm, "guest_commit_wait", r.stages.guest_commit_wait);
    AddStageMetrics(json, arm, "vmm_request", r.stages.vmm_request);
    AddStageMetrics(json, arm, "buffer_ack", r.stages.buffer_ack);
    AddStageMetrics(json, arm, "medium_write", r.stages.medium_write);
    AddStageMetrics(json, arm, "device_flush", r.stages.device_flush);
  }
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].snapshots_json.empty()) {
      json.AddRaw(std::string("snapshots_") + kArms[i].name,
                  results[i].snapshots_json);
    }
  }
  if (json.WriteFile(json_out)) {
    std::printf("\nwrote %s\n", json_out.c_str());
  }

  if (!trace_out.empty()) {
    // Dedicated traced re-run of the rapilog arm: identical config, so the
    // trace depicts exactly the run reported above (tracing is passive and
    // cannot perturb it), and the table runs stay shareable across --jobs.
    rlobs::SpanTracer tracer;
    rlbench::TpccRunConfig cfg =
        ArmConfig(DeploymentMode::kRapiLog, rlsim::Duration::Zero());
    cfg.sink = &tracer;
    rlbench::RunTpcc(cfg);
    if (rlobs::WriteChromeTrace(tracer, trace_out)) {
      std::printf("wrote %s (%zu trace events)\n", trace_out.c_str(),
                  tracer.records().size());
    }
    // Critical-path view of the traced arm. Single-node commit-path spans
    // are mostly independent roots (stage spans don't nest under one
    // client-visible root the way fleet 2PC spans do), so each class's
    // breakdown is dominated by its own self time — still useful as a
    // per-class duration census, and the same report shape as E13's.
    const rlobs::CriticalPathReport cp =
        rlobs::AnalyzeCriticalPaths(rlobs::CollectSpans(tracer));
    std::fputs(rlobs::FormatCriticalPath(cp).c_str(), stdout);
  }
  return 0;
}

// E7 — Transaction latency distribution per deployment mode.
//
// RapiLog's effect in the time domain: synchronous logging puts a
// rotational-latency floor under every commit; RapiLog removes it, so the
// whole distribution shifts left and the tail tightens.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;

}  // namespace

int main() {
  const struct {
    const char* name;
    DeploymentMode mode;
  } arms[] = {
      {"native", DeploymentMode::kNative},
      {"virt", DeploymentMode::kVirt},
      {"rapilog", DeploymentMode::kRapiLog},
      {"unsafe", DeploymentMode::kUnsafeAsync},
  };

  PrintHeader("E7: TPC-C-lite transaction latency, 16 clients, shared HDD, "
              "pg-like");
  Table table;
  table.Row({"mode", "mean", "p50", "p95", "p99"});
  for (const auto& arm : arms) {
    rlbench::TpccRunConfig cfg;
    cfg.testbed = rlbench::DefaultTestbed(arm.mode, DiskSetup::kSharedHdd,
                                          rldb::PostgresLikeProfile());
    cfg.tpcc = rlbench::DefaultTpcc();
    cfg.clients = 16;
    const rlbench::RunResult result = rlbench::RunTpcc(cfg);
    table.Row({arm.name, FmtDur(result.mean), FmtDur(result.p50),
               FmtDur(result.p95), FmtDur(result.p99)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: native/virt medians sit above a rotational floor "
      "(~ms);\nrapilog collapses towards the unsafe lower bound.\n");
  return 0;
}

// E6 — Virtualisation overhead on a CPU-bound workload.
//
// A read-only key-value workload whose working set fits in the buffer pool:
// after warmup there is no disk I/O on the critical path, so the native/virt
// gap isolates the hypervisor's CPU cost (paper: a few percent) and shows
// that RapiLog adds nothing on top of plain virtualisation.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/kv_workload.h"

namespace {

using rlbench::Fmt;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

double RunArm(DeploymentMode mode) {
  Simulator sim(13);
  rlharness::TestbedOptions opts = rlbench::DefaultTestbed(
      mode, DiskSetup::kSsdLog, rldb::PostgresLikeProfile());
  rlharness::Testbed bed(sim, opts);
  rlwork::KvConfig kv_cfg;
  kv_cfg.key_space = 2000;  // fits comfortably in the pool
  kv_cfg.write_fraction = 0.0;
  kv_cfg.ops_per_txn = 8;
  kv_cfg.think_time = Duration::Micros(20);
  rlwork::KvWorkload kv(sim, kv_cfg);
  bool stop = false;
  double rate = 0;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::KvWorkload& w,
               bool& stop_flag, double& out) -> Task<void> {
    co_await b.Start();
    co_await w.Load(b.db(), 2000);
    for (int c = 0; c < 8; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
    }
    co_await s.Sleep(Duration::Millis(500));  // warm the pool
    w.stats().committed.Reset();
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(Duration::Seconds(2));
    out = static_cast<double>(w.stats().committed.value()) /
          (s.now() - t0).ToSecondsF();
    stop_flag = true;
  }(sim, bed, kv, stop, rate));
  sim.Run();
  return rate;
}

}  // namespace

int main() {
  PrintHeader("E6: CPU-bound read-only throughput (txns/s) — virtualisation "
              "overhead isolated");
  Table table;
  table.Row({"mode", "txns/s", "vs native"});
  const double native = RunArm(DeploymentMode::kNative);
  const double virt = RunArm(DeploymentMode::kVirt);
  const double rapi = RunArm(DeploymentMode::kRapiLog);
  table.Row({"native", Fmt(native, "%.0f"), "1.00x"});
  table.Row({"virt", Fmt(virt, "%.0f"), Fmt(virt / native, "%.2fx")});
  table.Row({"rapilog", Fmt(rapi, "%.0f"), Fmt(rapi / native, "%.2fx")});
  table.Print();
  std::printf(
      "\nExpected shape: virt within a few %% of native (the configured CPU "
      "overhead);\nrapilog == virt (it only touches the log path).\n");
  return 0;
}

// E10 — Guest OS crash durability campaign.
//
// The other half of RapiLog's guarantee: the trusted layer sits below the
// guest, so an OS or DBMS crash cannot touch buffered log data — RapiLog
// keeps draining and every acknowledged commit survives the reboot.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/faults/durability_checker.h"
#include "src/workload/tpcc_lite.h"

namespace {

using rlbench::Fmt;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? 8 : 20;
  Simulator sim(99);
  rlharness::TestbedOptions opts = rlbench::DefaultTestbed(
      DeploymentMode::kRapiLog, DiskSetup::kSharedHdd,
      rldb::PostgresLikeProfile());
  rlharness::Testbed bed(sim, opts);
  rlwork::TpccLite tpcc(sim, rlbench::DefaultTpcc());
  rlfault::DurabilityChecker checker;

  int bad_trials = 0;
  uint64_t total_checked = 0;
  uint64_t total_lost = 0;
  uint64_t drained_after_crash = 0;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::TpccLite& w,
               rlfault::DurabilityChecker& chk, int n_trials, int& bad,
               uint64_t& checked, uint64_t& lost,
               uint64_t& drained) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    rlsim::Rng rng(s.rng().Fork());
    for (int trial = 0; trial < n_trials; ++trial) {
      auto stop = std::make_shared<bool>(false);
      for (int c = 0; c < 6; ++c) {
        s.Spawn(w.RunClient(b.db(), trial * 100 + c, stop.get(), &chk));
      }
      co_await s.Sleep(Duration::Millis(rng.UniformInt(30, 400)));
      const int64_t drained_before = b.rapilog()->stats().drained_bytes.value();
      const uint64_t buffered = b.rapilog()->buffered_bytes();
      b.CrashGuest();
      *stop = true;
      co_await b.RecoverAfterGuestCrash();
      drained +=
          static_cast<uint64_t>(b.rapilog()->stats().drained_bytes.value() -
                                drained_before);
      (void)buffered;
      const auto verdict = co_await chk.VerifyAfterRecovery(b.db());
      checked += verdict.keys_checked;
      lost += verdict.lost_writes + verdict.atomicity_violations;
      if (!verdict.ok()) {
        ++bad;
      }
    }
  }(sim, bed, tpcc, checker, trials, bad_trials, total_checked, total_lost,
    drained_after_crash));
  sim.Run();

  PrintHeader("E10: guest-OS crash campaign under RapiLog");
  Table table;
  table.Row({"trials", "checked", "lost", "bad-trials", "drained-post-crash"});
  table.Row({Fmt(trials, "%.0f"), Fmt(total_checked, "%.0f"),
             Fmt(total_lost, "%.0f"), Fmt(bad_trials, "%.0f"),
             Fmt(static_cast<double>(drained_after_crash) / 1024.0,
                 "%.0f KiB")});
  table.Print();
  std::printf(
      "\nExpected shape: zero lost transactions in every trial; the "
      "post-crash drain count\nshows buffered data reaching the disk after "
      "the guest died.\n");
  return bad_trials == 0 ? 0 : 1;
}

// Component microbenchmarks (google-benchmark): costs of the simulation
// substrate itself — event dispatch, coroutine wakeups, RNG, CRC, histogram
// recording, kernel IPC round-trips, B+-tree operations.
#include <benchmark/benchmark.h>

#include "src/db/btree.h"
#include "src/db/buffer_pool.h"
#include "src/microkernel/kernel.h"
#include "src/sim/crc32.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/storage/block_device.h"

namespace {

void BM_EventSchedule(benchmark::State& state) {
  rlsim::Simulator sim;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(rlsim::Duration::Micros(i), [&sink] { ++sink; });
    }
    sim.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSchedule);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    rlsim::Simulator sim;
    sim.Spawn([](rlsim::Simulator& s) -> rlsim::Task<void> {
      for (int i = 0; i < 1000; ++i) {
        co_await s.Sleep(rlsim::Duration::Nanos(1));
      }
    }(sim));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_RngNext(benchmark::State& state) {
  rlsim::Rng rng(1);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.Next();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNext);

void BM_ZipfianNext(benchmark::State& state) {
  rlsim::Rng rng(1);
  rlsim::ZipfianGenerator zipf(1'000'000, 0.99);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= zipf.Next(rng);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ZipfianNext);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  uint32_t sink = 0;
  for (auto _ : state) {
    sink ^= rlsim::Crc32c(data);
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(8192);

void BM_HistogramRecord(benchmark::State& state) {
  rlsim::Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 7) % 1'000'000 + 1;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_KernelIpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    rlsim::Simulator sim;
    rlkern::Kernel kernel(sim);
    const rlkern::ObjectId root = kernel.BootstrapCNode(16);
    kernel.BootstrapUntyped(root, 0, 1 << 16);
    kernel.Retype(rlkern::SlotAddr{root, 0}, rlkern::ObjectType::kEndpoint, 0,
                  root, 1, 1);
    const rlkern::SlotAddr ep{root, 1};
    sim.Spawn([](rlkern::Kernel& k, rlkern::SlotAddr e) -> rlsim::Task<void> {
      for (int i = 0; i < 100; ++i) {
        rlkern::Received got;
        co_await k.Recv(e, &got);
        rlkern::IpcMessage reply;
        k.Reply(got.reply, std::move(reply));
      }
    }(kernel, ep));
    sim.Spawn([](rlkern::Kernel& k, rlkern::SlotAddr e) -> rlsim::Task<void> {
      for (int i = 0; i < 100; ++i) {
        rlkern::IpcMessage msg;
        rlkern::IpcMessage reply;
        co_await k.Call(e, std::move(msg), &reply);
      }
    }(kernel, ep));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_KernelIpcRoundTrip);

void BM_BTreePut(benchmark::State& state) {
  for (auto _ : state) {
    rlsim::Simulator sim;
    rlstor::SimBlockDevice dev(
        sim,
        rlstor::SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20}},
        rlstor::MakeDefaultSsd());
    rldb::BufferPool pool(sim, dev, 8192, 4096);
    uint64_t next_free = 1;
    rldb::BTree tree(pool, 96, &next_free);
    sim.Spawn([](rldb::BTree& t) -> rlsim::Task<void> {
      uint64_t root = t.CreateEmpty();
      const std::vector<uint8_t> value(96, 0x11);
      for (uint64_t k = 0; k < 2000; ++k) {
        root = co_await t.Put(root, k * 7919 % 100000, value);
      }
    }(tree));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BTreePut);

}  // namespace

BENCHMARK_MAIN();

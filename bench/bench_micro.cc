// Component microbenchmarks (google-benchmark): costs of the simulation
// substrate itself — event dispatch, coroutine wakeups, RNG, CRC, histogram
// recording, kernel IPC round-trips, B+-tree operations.
//
// `bench_micro --json FILE` bypasses google-benchmark and runs a small fixed
// perf suite instead, writing BENCH_perf.json: CRC-32C throughput (slice-by-8
// vs the table-driven reference), simulator event dispatch rate (pooled heap
// vs a naive priority_queue<std::function> baseline), and chaos-campaign
// wall-clock at --jobs 1 vs --jobs N. These are the numbers later PRs are
// judged against; the suite also cross-checks that the parallel campaign
// reproduces the sequential corpus hash.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>

#include "bench/bench_common.h"
#include "src/db/btree.h"
#include "src/db/buffer_pool.h"
#include "src/faults/chaos/chaos_explorer.h"
#include "src/harness/parallel_runner.h"
#include "src/microkernel/kernel.h"
#include "src/sim/crc32.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/storage/block_device.h"

namespace {

void BM_EventSchedule(benchmark::State& state) {
  rlsim::Simulator sim;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(rlsim::Duration::Micros(i), [&sink] { ++sink; });
    }
    sim.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSchedule);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    rlsim::Simulator sim;
    sim.Spawn([](rlsim::Simulator& s) -> rlsim::Task<void> {
      for (int i = 0; i < 1000; ++i) {
        co_await s.Sleep(rlsim::Duration::Nanos(1));
      }
    }(sim));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_RngNext(benchmark::State& state) {
  rlsim::Rng rng(1);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.Next();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNext);

void BM_ZipfianNext(benchmark::State& state) {
  rlsim::Rng rng(1);
  rlsim::ZipfianGenerator zipf(1'000'000, 0.99);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= zipf.Next(rng);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ZipfianNext);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  uint32_t sink = 0;
  for (auto _ : state) {
    sink ^= rlsim::Crc32c(data);
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(8192);

void BM_HistogramRecord(benchmark::State& state) {
  rlsim::Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 7) % 1'000'000 + 1;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_KernelIpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    rlsim::Simulator sim;
    rlkern::Kernel kernel(sim);
    const rlkern::ObjectId root = kernel.BootstrapCNode(16);
    kernel.BootstrapUntyped(root, 0, 1 << 16);
    kernel.Retype(rlkern::SlotAddr{root, 0}, rlkern::ObjectType::kEndpoint, 0,
                  root, 1, 1);
    const rlkern::SlotAddr ep{root, 1};
    sim.Spawn([](rlkern::Kernel& k, rlkern::SlotAddr e) -> rlsim::Task<void> {
      for (int i = 0; i < 100; ++i) {
        rlkern::Received got;
        co_await k.Recv(e, &got);
        rlkern::IpcMessage reply;
        k.Reply(got.reply, std::move(reply));
      }
    }(kernel, ep));
    sim.Spawn([](rlkern::Kernel& k, rlkern::SlotAddr e) -> rlsim::Task<void> {
      for (int i = 0; i < 100; ++i) {
        rlkern::IpcMessage msg;
        rlkern::IpcMessage reply;
        co_await k.Call(e, std::move(msg), &reply);
      }
    }(kernel, ep));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_KernelIpcRoundTrip);

void BM_BTreePut(benchmark::State& state) {
  for (auto _ : state) {
    rlsim::Simulator sim;
    rlstor::SimBlockDevice dev(
        sim,
        rlstor::SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20}},
        rlstor::MakeDefaultSsd());
    rldb::BufferPool pool(sim, dev, 8192, 4096);
    uint64_t next_free = 1;
    rldb::BTree tree(pool, 96, &next_free);
    sim.Spawn([](rldb::BTree& t) -> rlsim::Task<void> {
      uint64_t root = t.CreateEmpty();
      const std::vector<uint8_t> value(96, 0x11);
      for (uint64_t k = 0; k < 2000; ++k) {
        root = co_await t.Put(root, k * 7919 % 100000, value);
      }
    }(tree));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BTreePut);

// --- Fixed perf suite (--json) ----------------------------------------------
//
// The suite measures real host time, which is exactly what the simulator
// bans everywhere else; this binary is a host-side measurement tool, not
// part of any simulation.

// simlint: clock-ok (host-side perf measurement tool, outside the sim)
using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// MiB/s of `crc` over a 1 MiB pseudo-random buffer, fixed iteration count so
// both implementations see identical input.
double CrcThroughputMibps(uint32_t (*crc)(std::span<const uint8_t>,
                                          uint32_t)) {
  constexpr size_t kBufBytes = 1 << 20;
  constexpr int kWarmup = 4;
  constexpr int kIters = 64;
  std::vector<uint8_t> buf(kBufBytes);
  rlsim::Rng rng(1);
  for (uint8_t& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  uint32_t sink = 0;
  for (int i = 0; i < kWarmup; ++i) {
    sink ^= crc(buf, sink);
  }
  const WallClock::time_point t0 = WallClock::now();
  for (int i = 0; i < kIters; ++i) {
    sink ^= crc(buf, sink);
  }
  const double secs = SecondsSince(t0);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(kIters) * kBufBytes / (1 << 20) / secs;
}

constexpr int kEventBatch = 1000;
constexpr int kEventRounds = 200;

// Events/sec through the simulator's pooled binary heap: the BM_EventSchedule
// workload, timed directly.
double PooledEventsPerSec() {
  rlsim::Simulator sim;
  int sink = 0;
  const WallClock::time_point t0 = WallClock::now();
  for (int round = 0; round < kEventRounds; ++round) {
    for (int i = 0; i < kEventBatch; ++i) {
      sim.Schedule(rlsim::Duration::Micros(i), [&sink] { ++sink; });
    }
    sim.Run();
  }
  const double secs = SecondsSince(t0);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(kEventRounds) * kEventBatch / secs;
}

// The pre-optimisation baseline, reconstructed locally: one heap node per
// event, each holding its std::function by value (so every push allocates
// and every pop moves/destroys one).
struct NaiveEvent {
  int64_t at_nanos;
  uint64_t seq;
  std::function<void()> fn;
};
struct NaiveLater {
  bool operator()(const NaiveEvent& a, const NaiveEvent& b) const {
    if (a.at_nanos != b.at_nanos) return a.at_nanos > b.at_nanos;
    return a.seq > b.seq;
  }
};

double NaiveQueueEventsPerSec() {
  std::priority_queue<NaiveEvent, std::vector<NaiveEvent>, NaiveLater> queue;
  int sink = 0;
  uint64_t seq = 0;
  const WallClock::time_point t0 = WallClock::now();
  for (int round = 0; round < kEventRounds; ++round) {
    for (int i = 0; i < kEventBatch; ++i) {
      queue.push(NaiveEvent{i * 1000, seq++, [&sink] { ++sink; }});
    }
    while (!queue.empty()) {
      // const_cast mirrors what the old simulator did to move the closure
      // out of priority_queue's const top().
      NaiveEvent ev = std::move(const_cast<NaiveEvent&>(queue.top()));
      queue.pop();
      ev.fn();
    }
  }
  const double secs = SecondsSince(t0);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(kEventRounds) * kEventBatch / secs;
}

struct CampaignTiming {
  double seconds = 0;
  uint64_t corpus_hash = 0;
};

CampaignTiming TimeCampaign(int jobs, uint64_t episodes) {
  rlchaos::ExplorerOptions opts;
  opts.base_seed = 1;
  opts.episodes = episodes;
  opts.jobs = jobs;
  const WallClock::time_point t0 = WallClock::now();
  const rlchaos::ExplorerReport report =
      rlchaos::ChaosExplorer(opts).RunCampaign();
  CampaignTiming out;
  out.seconds = SecondsSince(t0);
  out.corpus_hash = report.corpus_hash;
  return out;
}

int RunPerfSuite(const std::string& json_path, int jobs) {
  const double crc_table = CrcThroughputMibps(&rlsim::Crc32cTableDriven);
  const double crc_slice8 = CrcThroughputMibps(&rlsim::Crc32c);
  const double pooled_eps = PooledEventsPerSec();
  const double naive_eps = NaiveQueueEventsPerSec();

  constexpr uint64_t kCampaignEpisodes = 40;
  const CampaignTiming seq = TimeCampaign(1, kCampaignEpisodes);
  const CampaignTiming par = TimeCampaign(jobs, kCampaignEpisodes);
  if (seq.corpus_hash != par.corpus_hash) {
    std::fprintf(stderr,
                 "FATAL: campaign corpus hash diverged across job counts "
                 "(jobs=1: %016llx, jobs=%d: %016llx)\n",
                 static_cast<unsigned long long>(seq.corpus_hash), jobs,
                 static_cast<unsigned long long>(par.corpus_hash));
    return 1;
  }

  rlbench::BenchJsonWriter writer;
  writer.Add("crc32c_table_mibps", crc_table, "MiB/s");
  writer.Add("crc32c_slice8_mibps", crc_slice8, "MiB/s");
  writer.Add("crc32c_speedup", crc_slice8 / crc_table, "x");
  writer.Add("events_per_sec_pooled", pooled_eps, "events/s");
  writer.Add("events_per_sec_naive_queue", naive_eps, "events/s");
  writer.Add("event_dispatch_speedup", pooled_eps / naive_eps, "x");
  writer.Add("campaign_40ep_jobs1_sec", seq.seconds, "s");
  writer.Add("campaign_40ep_jobsN_sec", par.seconds, "s");
  writer.Add("campaign_jobs", jobs, "threads");
  writer.Add("campaign_speedup", seq.seconds / par.seconds, "x");
  std::fputs(writer.ToString().c_str(), stdout);
  return writer.WriteFile(json_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    }
  }
  if (!json_path.empty()) {
    return RunPerfSuite(json_path, jobs > 0 ? jobs : rlharness::DefaultJobs());
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Shared harness code for the experiment benchmarks (E1..E10): runs a
// workload on a Testbed configuration for a stretch of simulated time and
// reports throughput/latency, plus small table-printing helpers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/kv_workload.h"
#include "src/workload/tpcc_lite.h"

namespace rlbench {

struct RunResult {
  double txns_per_sec = 0;
  double new_orders_per_sec = 0;
  int64_t committed = 0;
  int64_t lock_aborts = 0;
  rlsim::Duration p50 = rlsim::Duration::Zero();
  rlsim::Duration p95 = rlsim::Duration::Zero();
  rlsim::Duration p99 = rlsim::Duration::Zero();
  rlsim::Duration mean = rlsim::Duration::Zero();
};

struct TpccRunConfig {
  rlharness::TestbedOptions testbed;
  rlwork::TpccConfig tpcc;
  int clients = 16;
  rlsim::Duration warmup = rlsim::Duration::Millis(500);
  rlsim::Duration measure = rlsim::Duration::Seconds(3);
  uint64_t seed = 42;
};

// Runs TPC-C-lite on a fresh testbed and reports steady-state results
// (warmup excluded by resetting the counters).
RunResult RunTpcc(const TpccRunConfig& config);

// Runs every config as an independent job across `jobs` worker threads
// (src/harness/parallel_runner); results[i] corresponds to configs[i], so a
// sweep printed from the returned vector is byte-identical at any job
// count. Each cell builds its own Simulator/Testbed; nothing is shared.
std::vector<RunResult> RunTpccMany(const std::vector<TpccRunConfig>& configs,
                                   int jobs);

// Standard testbed options used across experiments.
rlharness::TestbedOptions DefaultTestbed(rlharness::DeploymentMode mode,
                                         rlharness::DiskSetup disks,
                                         const rldb::EngineProfile& profile);

// Standard small-but-contended TPC-C sizing.
rlwork::TpccConfig DefaultTpcc();

// --- Output helpers ----------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Buffered table whose columns are sized to their widest cell (+2 gap), so
// long values (big throughput numbers, duration strings) never spill out of
// a hardcoded column width and break alignment. All bench tables route
// through this.
class Table {
 public:
  void Row(std::vector<std::string> cells);
  // Renders every buffered row to stdout and clears the table.
  void Print();

 private:
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtDur(rlsim::Duration d) { return rlsim::ToString(d); }

// --- Machine-readable bench output -------------------------------------------

// Collects named metrics and writes them as JSON (insertion order preserved,
// so output is deterministic): {"metrics":[{"name":...,"value":...,
// "unit":...},...]}. Used by bench_micro --json to produce BENCH_perf.json,
// the perf baseline later PRs are judged against.
class BenchJsonWriter {
 public:
  void Add(const std::string& name, double value, const std::string& unit);
  std::string ToString() const;
  // Returns false (and prints to stderr) if the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Metric> metrics_;
};

}  // namespace rlbench

// Shared harness code for the experiment benchmarks (E1..E10): runs a
// workload on a Testbed configuration for a stretch of simulated time and
// reports throughput/latency, plus small table-printing helpers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/workload/kv_workload.h"
#include "src/workload/tpcc_lite.h"

namespace rlbench {

// Per-stage commit-path latency, copied out of the component histograms at
// the end of the measurement window (warmup excluded by the same reset that
// restarts the workload counters). Stages a deployment mode does not have
// stay empty: vmm_request in kNative (no guest stack), buffer_ack outside
// kRapiLog. On a shared spindle (DiskSetup::kSharedHdd) medium_write also
// includes data-page traffic — it is the physical device the log lands on,
// not a log-only probe.
struct StageStats {
  rlsim::Histogram guest_commit_wait;  // WAL WaitDurable blocked time
  rlsim::Histogram vmm_request;        // guest-observed vblk request latency
  rlsim::Histogram buffer_ack;         // RapiLog buffered-ack latency
  rlsim::Histogram medium_write;       // physical log-disk write latency
  rlsim::Histogram device_flush;       // physical log-disk flush latency
};

struct RunResult {
  double txns_per_sec = 0;
  double new_orders_per_sec = 0;
  int64_t committed = 0;
  int64_t lock_aborts = 0;
  rlsim::Duration p50 = rlsim::Duration::Zero();
  rlsim::Duration p95 = rlsim::Duration::Zero();
  rlsim::Duration p99 = rlsim::Duration::Zero();
  rlsim::Duration mean = rlsim::Duration::Zero();
  StageStats stages;
  // JSON array of periodic StatsRegistry snapshots (see
  // src/obs/metrics_snapshot.h); empty unless TpccRunConfig::snapshot_every
  // was set.
  std::string snapshots_json;
};

struct TpccRunConfig {
  rlharness::TestbedOptions testbed;
  rlwork::TpccConfig tpcc;
  int clients = 16;
  rlsim::Duration warmup = rlsim::Duration::Millis(500);
  rlsim::Duration measure = rlsim::Duration::Seconds(3);
  uint64_t seed = 42;
  // Observability hooks. Neither affects the simulation's behaviour — spans
  // and snapshots are passive observers (see DESIGN.md "Observability").
  // `sink` is installed as the run's trace sink for the whole run (including
  // warmup); it must not be shared across concurrent RunTpccMany jobs.
  rlsim::TraceEventSink* sink = nullptr;
  // Zero = no snapshots. When set, a MetricsSnapshotter samples the run's
  // stats registry every `snapshot_every` of virtual time across the
  // measurement window; the series lands in RunResult::snapshots_json.
  rlsim::Duration snapshot_every = rlsim::Duration::Zero();
};

// Runs TPC-C-lite on a fresh testbed and reports steady-state results
// (warmup excluded by resetting the counters).
RunResult RunTpcc(const TpccRunConfig& config);

// Runs every config as an independent job across `jobs` worker threads
// (src/harness/parallel_runner); results[i] corresponds to configs[i], so a
// sweep printed from the returned vector is byte-identical at any job
// count. Each cell builds its own Simulator/Testbed; nothing is shared.
std::vector<RunResult> RunTpccMany(const std::vector<TpccRunConfig>& configs,
                                   int jobs);

// Standard testbed options used across experiments.
rlharness::TestbedOptions DefaultTestbed(rlharness::DeploymentMode mode,
                                         rlharness::DiskSetup disks,
                                         const rldb::EngineProfile& profile);

// Standard small-but-contended TPC-C sizing.
rlwork::TpccConfig DefaultTpcc();

// --- Output helpers ----------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Buffered table whose columns are sized to their widest cell (+2 gap), so
// long values (big throughput numbers, duration strings) never spill out of
// a hardcoded column width and break alignment. All bench tables route
// through this.
class Table {
 public:
  void Row(std::vector<std::string> cells);
  // Renders every buffered row to stdout and clears the table.
  void Print();

 private:
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtDur(rlsim::Duration d) { return rlsim::ToString(d); }

// --- Machine-readable bench output -------------------------------------------

// Collects named metrics and writes them as JSON (insertion order preserved,
// so output is deterministic): {"metrics":[{"name":...,"value":...,
// "unit":...},...]}. Used by bench_micro --json to produce BENCH_perf.json
// (the perf baseline later PRs are judged against) and by the experiment
// benches for their BENCH_e*.json files.
class BenchJsonWriter {
 public:
  void Add(const std::string& name, double value, const std::string& unit);
  // Attaches a pre-rendered JSON value as a top-level key next to "metrics"
  // (e.g. a MetricsSnapshotter series). `json` must already be valid JSON;
  // it is spliced in verbatim, insertion order preserved.
  void AddRaw(const std::string& name, const std::string& json);
  std::string ToString() const;
  // Returns false (and prints to stderr) if the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Metric> metrics_;
  std::vector<std::pair<std::string, std::string>> raw_;
};

}  // namespace rlbench

// E5 — Disk-configuration matrix: where does RapiLog win, and by how much?
//
// The paper's claim has two halves: (a) on plain rotating disks RapiLog
// improves throughput substantially, and (b) on hardware that already hides
// write latency (battery-backed write cache, SSD) it never hurts beyond the
// virtualisation overhead. The matrix reproduces both.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

using rlbench::Fmt;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;

}  // namespace

int main() {
  const struct {
    const char* name;
    DiskSetup setup;
  } disks[] = {
      {"shared-hdd", DiskSetup::kSharedHdd},
      {"separate-hdd", DiskSetup::kSeparateHdd},
      {"bbwc", DiskSetup::kBbwc},
      {"ssd-log", DiskSetup::kSsdLog},
  };
  const struct {
    const char* name;
    DeploymentMode mode;
  } arms[] = {
      {"native", DeploymentMode::kNative},
      {"virt", DeploymentMode::kVirt},
      {"rapilog", DeploymentMode::kRapiLog},
  };

  PrintHeader(
      "E5: TPC-C-lite throughput (txns/s) by storage configuration, "
      "16 clients, pg-like");
  Table table;
  table.Row({"disks", "native", "virt", "rapilog", "rapi/virt"});

  for (const auto& disk : disks) {
    std::vector<double> rates;
    for (const auto& arm : arms) {
      rlbench::TpccRunConfig cfg;
      cfg.testbed = rlbench::DefaultTestbed(arm.mode, disk.setup,
                                            rldb::PostgresLikeProfile());
      cfg.tpcc = rlbench::DefaultTpcc();
      cfg.clients = 16;
      rates.push_back(rlbench::RunTpcc(cfg).txns_per_sec);
    }
    table.Row({disk.name, Fmt(rates[0], "%.0f"), Fmt(rates[1], "%.0f"),
               Fmt(rates[2], "%.0f"),
               Fmt(rates[1] > 0 ? rates[2] / rates[1] : 0, "%.2fx")});
  }
  table.Print();
  std::printf(
      "\nExpected shape: biggest rapilog win on the shared rotating disk; "
      "the win shrinks\nwith a dedicated log disk and mostly vanishes with "
      "BBWC/SSD — but never inverts\nbeyond noise (RapiLog does not "
      "degrade performance).\n");
  return 0;
}

// E13 — sharded fleet behind a 2PC coordinator: throughput and
// client-observed commit latency across shard count x client count x
// cross-shard ratio.
//
// Each cell is an independent seeded simulation (its own FleetTestbed), so
// the sweep fans across --jobs worker threads with results reduced in cell
// order: stdout and BENCH_e13.json are byte-identical at any job count.
//
//   --shards N        pin the shard-count axis to {N} (default: sweep)
//   --cross-ratio X   pin the cross-shard-probability axis to {X}
//   --budget small|full   grid size and measurement window (default full)
//   --jobs N          worker threads; 0 = all cores
//   --seed S          base seed (default 42)
//   --json FILE       write the sweep as BENCH-style JSON
//   --trace-out FILE  re-run one cell with the span tracer and write Chrome
//                     trace-event JSON (2PC prepare/decide spans, WAL/disk
//                     spans, causal parent links) loadable in Perfetto; also
//                     prints the per-edge critical-path breakdown of the
//                     traced cell's transaction classes
//   --critical-path-json FILE  write that breakdown as JSON (needs
//                     --trace-out)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/fleet_testbed.h"
#include "src/harness/parallel_runner.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/critical_path.h"
#include "src/obs/span_tracer.h"
#include "src/workload/fleet_workload.h"

namespace {

using rlbench::Fmt;
using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::Table;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

struct Cell {
  size_t shards;
  int clients;
  double cross_ratio;
};

struct CellResult {
  double txns_per_sec = 0;
  double cross_frac = 0;  // committed cross-shard share
  Duration p50 = Duration::Zero();
  Duration p95 = Duration::Zero();
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t unknown = 0;
};

struct Budget {
  Duration warmup;
  Duration measure;
};

CellResult RunCell(const Cell& cell, const Budget& budget, uint64_t seed,
                   rlsim::TraceEventSink* sink) {
  Simulator sim(seed);
  if (sink != nullptr) {
    sim.set_tracer(sink);
  }
  rlharness::FleetOptions fopt;
  fopt.shards = cell.shards;
  fopt.shard.db.pool_pages = 512;
  fopt.shard.db.journal_pages = 300;
  fopt.shard.db.profile.checkpoint_dirty_pages = 128;
  rlharness::FleetTestbed fleet(sim, fopt);

  rlwork::FleetConfig wcfg;
  wcfg.cross_shard_probability = cell.cross_ratio;
  rlwork::FleetWorkload work(sim, wcfg);

  CellResult result;
  bool stop = false;
  sim.Spawn([](Simulator& s, rlharness::FleetTestbed& f,
               rlwork::FleetWorkload& w, const Cell& c, const Budget& b,
               CellResult& out, bool& stop_flag) -> Task<void> {
    co_await f.Start();
    for (int i = 0; i < c.clients; ++i) {
      s.Spawn(w.RunClient(f.coordinator(), f.directory(), i, &stop_flag,
                          nullptr));
    }
    co_await s.Sleep(b.warmup);
    w.stats().committed.Reset();
    w.stats().cross_committed.Reset();
    w.stats().aborted.Reset();
    w.stats().unknown.Reset();
    w.stats().txn_latency.Reset();
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(b.measure);
    const double seconds = (s.now() - t0).ToSecondsF();
    stop_flag = true;

    out.committed = w.stats().committed.value();
    out.aborted = w.stats().aborted.value();
    out.unknown = w.stats().unknown.value();
    out.txns_per_sec = static_cast<double>(out.committed) / seconds;
    out.cross_frac =
        out.committed == 0
            ? 0
            : static_cast<double>(w.stats().cross_committed.value()) /
                  static_cast<double>(out.committed);
    out.p50 = w.stats().txn_latency.PercentileDuration(50);
    out.p95 = w.stats().txn_latency.PercentileDuration(95);
    co_await f.Shutdown();
  }(sim, fleet, work, cell, budget, result, stop));
  sim.Run();
  if (sink != nullptr) {
    sim.set_tracer(nullptr);
  }
  return result;
}

// FNV-1a over every cell's integer observations: one line CI can diff
// between --jobs 1 and --jobs N runs.
uint64_t SweepHash(const std::vector<CellResult>& results) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const CellResult& r : results) {
    mix(static_cast<uint64_t>(r.committed));
    mix(static_cast<uint64_t>(r.aborted));
    mix(static_cast<uint64_t>(r.unknown));
    mix(static_cast<uint64_t>(r.p50.nanos()));
    mix(static_cast<uint64_t>(r.p95.nanos()));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 42;
  int jobs = 1;
  bool small = false;
  size_t pin_shards = 0;
  double pin_cross = -1.0;
  std::string json_path;
  std::string trace_out;
  std::string critical_path_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (jobs <= 0) {
        jobs = rlharness::DefaultJobs();
      }
    } else if (arg == "--shards") {
      pin_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cross-ratio") {
      pin_cross = std::strtod(next(), nullptr);
    } else if (arg == "--budget") {
      const std::string v = next();
      if (v == "small") {
        small = true;
      } else if (v != "full") {
        std::fprintf(stderr, "--budget wants small|full\n");
        return 2;
      }
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--critical-path-json") {
      critical_path_json = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::vector<size_t> shard_axis =
      small ? std::vector<size_t>{2, 4} : std::vector<size_t>{2, 3, 4, 6};
  if (pin_shards > 0) {
    shard_axis = {pin_shards};
  }
  std::vector<int> client_axis =
      small ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 16};
  std::vector<double> cross_axis =
      small ? std::vector<double>{0.0, 0.6} : std::vector<double>{0.0, 0.3, 0.6};
  if (pin_cross >= 0) {
    cross_axis = {pin_cross};
  }
  const Budget budget = small ? Budget{Duration::Millis(200), Duration::Millis(800)}
                              : Budget{Duration::Millis(400), Duration::Seconds(2)};

  std::vector<Cell> cells;
  for (const size_t s : shard_axis) {
    for (const int c : client_axis) {
      for (const double x : cross_axis) {
        cells.push_back(Cell{s, c, x});
      }
    }
  }

  PrintHeader("E13: fleet 2PC sweep (shards x clients x cross-shard ratio)");
  // Deliberately no jobs=N echo: stdout must be byte-identical at any job
  // count so CI can diff two runs directly.
  std::printf("seed=%" PRIu64 " cells=%zu budget=%s\n", seed, cells.size(),
              small ? "small" : "full");

  // Every cell derives from the base seed and its own cell index, so the
  // fan-out order cannot matter; RunJobs reduces in index order.
  const std::vector<CellResult> results = rlharness::RunJobs<CellResult>(
      jobs, cells.size(), [&cells, &budget, seed](size_t i) {
        return RunCell(cells[i], budget, seed + i * 1000003ull, nullptr);
      });

  Table table;
  table.Row({"shards", "clients", "cross", "txn/s", "cross-frac", "p50",
             "p95", "aborted", "unknown"});
  rlbench::BenchJsonWriter json;
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = results[i];
    table.Row({std::to_string(c.shards), std::to_string(c.clients),
               Fmt(c.cross_ratio, "%.2f"), Fmt(r.txns_per_sec, "%.0f"),
               Fmt(r.cross_frac, "%.3f"), FmtDur(r.p50), FmtDur(r.p95),
               std::to_string(r.aborted), std::to_string(r.unknown)});
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "e13.s%zu_c%d_x%.2f", c.shards,
                  c.clients, c.cross_ratio);
    json.Add(std::string(prefix) + ".txns_per_sec", r.txns_per_sec, "txn/s");
    json.Add(std::string(prefix) + ".cross_frac", r.cross_frac, "fraction");
    json.Add(std::string(prefix) + ".p50_us",
             static_cast<double>(r.p50.nanos()) / 1000.0, "us");
    json.Add(std::string(prefix) + ".p95_us",
             static_cast<double>(r.p95.nanos()) / 1000.0, "us");
  }
  table.Print();
  std::printf("sweep hash %016" PRIx64 "\n", SweepHash(results));

  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  if (!trace_out.empty()) {
    // Dedicated traced re-run of one cell, outside the sweep, so the sweep's
    // numbers and hash stay independent of tracing. Prefer a cell that
    // actually runs cross-shard transactions: the causal trees of local
    // commits have no prepare/decision edges to break down.
    size_t traced = 0;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].cross_ratio > 0) {
        traced = i;
        break;
      }
    }
    rlobs::SpanTracer tracer;
    RunCell(cells[traced], budget, seed + traced * 1000003ull, &tracer);
    if (!rlobs::WriteChromeTrace(tracer, trace_out)) {
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n", trace_out.c_str(),
                tracer.records().size());

    const rlobs::CriticalPathReport cp =
        rlobs::AnalyzeCriticalPaths(rlobs::CollectSpans(tracer));
    std::fputs(rlobs::FormatCriticalPath(cp).c_str(), stdout);
    if (!critical_path_json.empty()) {
      std::ofstream out(critical_path_json);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", critical_path_json.c_str());
        return 1;
      }
      out << rlobs::CriticalPathJson(cp);
      std::printf("wrote %s\n", critical_path_json.c_str());
    }
  } else if (!critical_path_json.empty()) {
    std::fprintf(stderr, "--critical-path-json needs --trace-out\n");
    return 2;
  }
  return 0;
}

// E14 — bounded-time recovery: virtual recovery time across WAL length x
// checkpoint interval x redo partition count.
//
// Each cell builds its crash state from scratch in an independent seeded
// simulation — a single writer streams multi-op transactions (optionally
// checkpointing every C commits), the mains fail, and the reopen is the
// measured recovery. Cells that differ only in the partition count share a
// seed, so they recover bit-identical disk images and the timing axis
// isolates the redo mode. The sweep fans across --jobs worker threads with
// results reduced in cell order: stdout and BENCH_e14.json are
// byte-identical at any job count.
//
//   --records N       pin the WAL-length axis to {N} redo records
//   --partitions K    pin the partition axis to {K}
//   --budget small|full   grid size (default full)
//   --jobs N          worker threads; 0 = all cores
//   --seed S          base seed (default 42)
//   --json FILE       write the sweep as BENCH-style JSON
//   --trace-out FILE  re-run the first cell with the span tracer and write
//                     Chrome trace-event JSON (recover / redo-partitioned /
//                     redo-install spans per worker) loadable in Perfetto
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/db/database.h"
#include "src/harness/parallel_runner.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/span_tracer.h"
#include "src/storage/block_device.h"

namespace {

using rlbench::Fmt;
using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::Table;
using rldb::Database;
using rldb::DbOptions;
using rldb::NativeCpu;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;
using rlstor::SimBlockDevice;
using rlstor::WriteCachePolicy;

constexpr uint64_t kKeySpace = 4096;
constexpr uint64_t kOpsPerTxn = 8;

struct Cell {
  uint64_t records;       // redo records in the WAL at the cut
  uint64_t ckpt_commits;  // checkpoint every C commits; 0 = never
  uint32_t partitions;    // redo partition count on the reopen
};

struct CellResult {
  Duration recovery = Duration::Zero();
  int64_t replayed = 0;  // post-horizon redo candidates
  int64_t skipped = 0;   // candidates retired by the fuzzy horizons
  uint64_t content_hash = 0;
};

std::vector<uint8_t> MakeValue(uint32_t value_bytes, uint64_t salt) {
  std::vector<uint8_t> v(value_bytes);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(salt * 131 + i * 7);
  }
  return v;
}

CellResult RunCell(const Cell& cell, uint64_t seed,
                   rlsim::TraceEventSink* sink) {
  Simulator sim(seed);
  if (sink != nullptr) {
    sim.set_tracer(sink);
  }
  NativeCpu cpu(sim);
  SimBlockDevice data(sim,
                      SimBlockDevice::Options{.geometry = {.sector_count =
                                                               1 << 19},
                                              .cache_policy =
                                                  WriteCachePolicy::kWriteBack,
                                              .name = "data"},
                      rlstor::MakeDefaultSsd());
  SimBlockDevice log(sim,
                     SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 19},
                                             .cache_policy =
                                                 WriteCachePolicy::kWriteBack,
                                             .name = "log"},
                     rlstor::MakeDefaultSsd());
  DbOptions options;
  options.profile = rldb::PostgresLikeProfile();
  options.profile.checkpoint_dirty_pages = 256;
  options.pool_pages = 1024;
  options.journal_pages = 600;
  DbOptions ropt = options;
  ropt.recovery.partitions = cell.partitions;

  CellResult result;
  sim.Spawn([](Simulator& s, NativeCpu& c, SimBlockDevice& d,
               SimBlockDevice& l, DbOptions opt, DbOptions reopen,
               const Cell& cfg, CellResult& out) -> Task<void> {
    auto db = co_await Database::Open(s, c, d, l, opt);
    const uint32_t value_bytes = db->options().profile.value_bytes;
    const uint64_t txns = cfg.records / kOpsPerTxn;
    for (uint64_t t = 0; t < txns; ++t) {
      const uint64_t txn = db->Begin();
      for (uint64_t o = 0; o < kOpsPerTxn; ++o) {
        // Knuth-hash key walk: spreads writes over every redo slice.
        const uint64_t key = ((t * kOpsPerTxn + o) * 2654435761ull) % kKeySpace;
        co_await db->Put(txn, key, MakeValue(value_bytes, t * kOpsPerTxn + o));
      }
      co_await db->Commit(txn);
      if (cfg.ckpt_commits != 0 && (t + 1) % cfg.ckpt_commits == 0) {
        co_await db->Checkpoint();
      }
    }

    // Mains failure: caches drop, the dead engine is torn down in the dark,
    // power returns, and the reopen is the measured recovery.
    d.PowerLoss();
    l.PowerLoss();
    co_await db->Close();
    db.reset();
    d.PowerRestore();
    l.PowerRestore();

    const rlsim::TimePoint before = s.now();
    db = co_await Database::Open(s, c, d, l, reopen);
    out.recovery = s.now() - before;
    out.replayed = db->stats().recovered_records.value();
    out.skipped = db->stats().redo_skipped_by_horizon.value();
    out.content_hash = co_await db->ContentHash();
    co_await db->Close();
  }(sim, cpu, data, log, options, ropt, cell, result));
  sim.Run();
  if (sink != nullptr) {
    sim.set_tracer(nullptr);
  }
  return result;
}

// FNV-1a over every cell's integer observations: one line CI can diff
// between --jobs 1 and --jobs N runs (and between partition counts, since
// the content hash of same-seed cells must not move with K).
uint64_t SweepHash(const std::vector<CellResult>& results) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const CellResult& r : results) {
    mix(static_cast<uint64_t>(r.recovery.nanos()));
    mix(static_cast<uint64_t>(r.replayed));
    mix(static_cast<uint64_t>(r.skipped));
    mix(r.content_hash);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 42;
  int jobs = 1;
  bool small = false;
  uint64_t pin_records = 0;
  uint32_t pin_partitions = 0;
  std::string json_path;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (jobs <= 0) {
        jobs = rlharness::DefaultJobs();
      }
    } else if (arg == "--records") {
      pin_records = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--partitions") {
      pin_partitions =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--budget") {
      const std::string v = next();
      if (v == "small") {
        small = true;
      } else if (v != "full") {
        std::fprintf(stderr, "--budget wants small|full\n");
        return 2;
      }
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::vector<uint64_t> record_axis = small
                                          ? std::vector<uint64_t>{16384}
                                          : std::vector<uint64_t>{16384, 65536};
  if (pin_records > 0) {
    record_axis = {pin_records};
  }
  // 768 deliberately does not divide the txn counts: the last checkpoint
  // leaves a real WAL tail, so these cells measure bounded-by-tail recovery
  // instead of an empty replay.
  const std::vector<uint64_t> ckpt_axis =
      small ? std::vector<uint64_t>{0} : std::vector<uint64_t>{0, 768};
  std::vector<uint32_t> partition_axis =
      small ? std::vector<uint32_t>{1, 8} : std::vector<uint32_t>{1, 2, 4, 8};
  if (pin_partitions > 0) {
    partition_axis = {pin_partitions};
  }

  std::vector<Cell> cells;
  std::vector<uint64_t> cell_seeds;
  uint64_t image = 0;  // one crash image per (records, ckpt) pair
  for (const uint64_t r : record_axis) {
    for (const uint64_t c : ckpt_axis) {
      ++image;
      for (const uint32_t k : partition_axis) {
        cells.push_back(Cell{r, c, k});
        // K-cells of one image share the seed: identical crash state, so
        // the recovery-time column is a clean same-image comparison.
        cell_seeds.push_back(seed + image * 1000003ull);
      }
    }
  }

  PrintHeader(
      "E14: recovery time (WAL records x checkpoint interval x partitions)");
  // Deliberately no jobs=N echo: stdout must be byte-identical at any job
  // count so CI can diff two runs directly.
  std::printf("seed=%" PRIu64 " cells=%zu budget=%s\n", seed, cells.size(),
              small ? "small" : "full");

  const std::vector<CellResult> results = rlharness::RunJobs<CellResult>(
      jobs, cells.size(), [&cells, &cell_seeds](size_t i) {
        return RunCell(cells[i], cell_seeds[i], nullptr);
      });

  Table table;
  table.Row({"records", "ckpt-every", "K", "recovery", "replayed", "skipped",
             "speedup"});
  rlbench::BenchJsonWriter json;
  // Sequential (K = first axis entry) time of the current image, for the
  // speedup column; the axis always starts at K=1 unless pinned.
  Duration base = Duration::Zero();
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = results[i];
    if (c.partitions == partition_axis.front()) {
      base = r.recovery;
    }
    const double speedup =
        r.recovery.nanos() == 0
            ? 0.0
            : static_cast<double>(base.nanos()) /
                  static_cast<double>(r.recovery.nanos());
    table.Row({std::to_string(c.records), std::to_string(c.ckpt_commits),
               std::to_string(c.partitions), FmtDur(r.recovery),
               std::to_string(r.replayed), std::to_string(r.skipped),
               Fmt(speedup, "%.2fx")});
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "e14.r%" PRIu64 "_c%" PRIu64 "_k%u",
                  c.records, c.ckpt_commits, c.partitions);
    json.Add(std::string(prefix) + ".recovery_us",
             static_cast<double>(r.recovery.nanos()) / 1000.0, "us");
    json.Add(std::string(prefix) + ".replayed",
             static_cast<double>(r.replayed), "records");
    json.Add(std::string(prefix) + ".skipped",
             static_cast<double>(r.skipped), "records");
    json.Add(std::string(prefix) + ".speedup_vs_seq", speedup, "x");
  }
  table.Print();
  std::printf("sweep hash %016" PRIx64 "\n", SweepHash(results));

  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  if (!trace_out.empty()) {
    // Dedicated traced re-run of the first cell, outside the sweep, so the
    // sweep's numbers and hash stay independent of tracing.
    rlobs::SpanTracer tracer;
    RunCell(cells[0], cell_seeds[0], &tracer);
    if (!rlobs::WriteChromeTrace(tracer, trace_out)) {
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n", trace_out.c_str(),
                tracer.records().size());
  }
  return 0;
}

// E4 — TPC-C throughput vs multiprogramming level, commercial-like engine.
#include "bench/bench_tpcc_sweep.h"

int main() {
  rlbench::RunTpccClientSweep("E4", rldb::CommercialLikeProfile());
  return 0;
}

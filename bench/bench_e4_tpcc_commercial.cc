// E4 — TPC-C throughput vs multiprogramming level, commercial-like engine.
#include "bench/bench_tpcc_sweep.h"

int main(int argc, char** argv) {
  rlbench::RunTpccClientSweep("E4", rldb::CommercialLikeProfile(),
                              rlbench::SweepJobsFromArgs(argc, argv));
  return 0;
}

// E9 — The power budget: PSU hold-up window vs RapiLog buffer size, and how
// much buffer the workload actually needs.
//
// Part 1 sweeps the electrical parameters and prints the admission budget
// RapiLog derives (linear in the post-warning window).
// Part 2 sweeps an explicit buffer cap and measures throughput: once the
// buffer covers the workload's burstiness, more buffer buys nothing — i.e.
// the modest budget a commodity PSU provides is already enough.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using rlbench::Fmt;
using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlsim::Duration;

}  // namespace

int main() {
  PrintHeader("E9a: admission budget vs electrical configuration");
  Table table;
  table.Row({"config", "window", "budget"});
  struct ElectricalArm {
    const char* name;
    double load_watts;
    Duration ups;
  };
  const ElectricalArm arms[] = {
      {"full-load PSU", 400, Duration::Zero()},
      {"half-load PSU", 200, Duration::Zero()},
      {"quarter-load PSU", 100, Duration::Zero()},
      {"small UPS (30 s)", 200, Duration::Seconds(30)},
  };
  for (const auto& arm : arms) {
    rlsim::Simulator sim;
    rlpow::PsuParams psu;
    psu.system_load_watts = arm.load_watts;
    psu.ups_runtime = arm.ups;
    rlpow::PowerSupply supply(sim, psu);
    rlstor::SimBlockDevice disk(
        sim, rlstor::SimBlockDevice::Options{.geometry = {.sector_count =
                                                              1 << 20}},
        rlstor::MakeDefaultHdd());
    rapilog::RapiLogDevice dev(sim, supply, disk, rapilog::RapiLogOptions{});
    table.Row({arm.name, FmtDur(supply.GuaranteedWindowAfterWarning()),
               Fmt(static_cast<double>(dev.max_buffer_bytes()) / 1024.0,
                   "%.0f KiB")});
  }
  table.Print();

  PrintHeader("E9b: TPC-C throughput vs RapiLog buffer cap (shared HDD, "
              "16 clients)");
  table.Row({"buffer-cap", "txns/s"});
  for (const uint64_t cap_kib : {16, 64, 256, 1024, 4096}) {
    rlbench::TpccRunConfig cfg;
    cfg.testbed = rlbench::DefaultTestbed(DeploymentMode::kRapiLog,
                                          DiskSetup::kSharedHdd,
                                          rldb::PostgresLikeProfile());
    cfg.testbed.rapilog.max_buffer_bytes_override = cap_kib * 1024;
    cfg.tpcc = rlbench::DefaultTpcc();
    cfg.clients = 16;
    const rlbench::RunResult result = rlbench::RunTpcc(cfg);
    table.Row({Fmt(static_cast<double>(cap_kib), "%.0f KiB"),
               Fmt(result.txns_per_sec, "%.0f")});
  }
  table.Print();
  std::printf(
      "\nExpected shape: budget scales linearly with the window; throughput "
      "saturates at a\nmodest buffer size — well inside what a commodity PSU "
      "hold-up can guarantee.\n");
  return 0;
}

// E3 — TPC-C throughput vs multiprogramming level, InnoDB-like engine.
#include "bench/bench_tpcc_sweep.h"

int main() {
  rlbench::RunTpccClientSweep("E3", rldb::InnodbLikeProfile());
  return 0;
}

// E3 — TPC-C throughput vs multiprogramming level, InnoDB-like engine.
#include "bench/bench_tpcc_sweep.h"

int main(int argc, char** argv) {
  rlbench::RunTpccClientSweep("E3", rldb::InnodbLikeProfile(),
                              rlbench::SweepJobsFromArgs(argc, argv));
  return 0;
}

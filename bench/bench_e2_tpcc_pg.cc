// E2 — TPC-C throughput vs multiprogramming level, PostgreSQL-like engine.
#include "bench/bench_tpcc_sweep.h"

int main() {
  rlbench::RunTpccClientSweep("E2", rldb::PostgresLikeProfile());
  return 0;
}

// E2 — TPC-C throughput vs multiprogramming level, PostgreSQL-like engine.
#include "bench/bench_tpcc_sweep.h"

int main(int argc, char** argv) {
  rlbench::RunTpccClientSweep("E2", rldb::PostgresLikeProfile(),
                              rlbench::SweepJobsFromArgs(argc, argv));
  return 0;
}

// E1 — Motivation: the cost of synchronous logging.
//
// Tiny update transactions (one write + commit, no think time) on a single
// shared rotating disk, native deployment, across durability schemes. The
// paper's motivating observation is the gulf between synchronous commits
// (bounded by the disk's rotation) and anything that decouples the ack from
// the platter; RapiLog reaches async-like rates while keeping the guarantee.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/kv_workload.h"

namespace {

using rlbench::Fmt;
using rlbench::FmtDur;
using rlbench::PrintHeader;
using rlbench::Table;
using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

struct Arm {
  const char* name;
  DeploymentMode mode;
  rldb::EngineProfile profile;
};

void RunArm(const Arm& arm, Table& table) {
  Simulator sim(7);
  rlharness::TestbedOptions opts = rlbench::DefaultTestbed(
      arm.mode, DiskSetup::kSharedHdd, arm.profile);
  rlharness::Testbed bed(sim, opts);
  rlwork::LogStress stress(sim);
  bool stop = false;
  double commits_per_sec = 0;
  Duration p50;
  Duration p99;

  sim.Spawn([](Simulator& s, rlharness::Testbed& b, rlwork::LogStress& w,
               bool& stop_flag, double& rate, Duration& out50,
               Duration& out99) -> Task<void> {
    co_await b.Start();
    for (int c = 0; c < 4; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag));
    }
    co_await s.Sleep(Duration::Millis(500));
    w.stats().committed.Reset();
    w.stats().commit_latency.Reset();
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(Duration::Seconds(3));
    rate = static_cast<double>(w.stats().committed.value()) /
           (s.now() - t0).ToSecondsF();
    out50 = w.stats().commit_latency.PercentileDuration(50);
    out99 = w.stats().commit_latency.PercentileDuration(99);
    stop_flag = true;
  }(sim, bed, stress, stop, commits_per_sec, p50, p99));
  sim.Run();

  table.Row({arm.name, Fmt(commits_per_sec, "%.0f"), FmtDur(p50), FmtDur(p99)});
}

}  // namespace

int main() {
  PrintHeader(
      "E1: commit rate under different durability schemes "
      "(4 clients, tiny txns, single shared 7200rpm disk)");
  Table table;
  table.Row({"scheme", "commits/s", "p50", "p99"});

  rldb::EngineProfile sync_pg = rldb::PostgresLikeProfile();
  rldb::EngineProfile group = rldb::PostgresLikeProfile();
  group.group_commit_window = rlsim::Duration::Millis(2);

  RunArm({"sync", DeploymentMode::kNative, sync_pg}, table);
  RunArm({"group-commit", DeploymentMode::kNative, group}, table);
  RunArm({"async-unsafe", DeploymentMode::kUnsafeAsync, sync_pg}, table);
  RunArm({"rapilog", DeploymentMode::kRapiLog, sync_pg}, table);
  table.Print();

  std::printf(
      "\nExpected shape: sync is bounded by disk rotation; group commit "
      "amortises it;\nasync and RapiLog commit at memory speed — but only "
      "RapiLog keeps durability.\n");
  return 0;
}

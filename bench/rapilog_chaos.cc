// E12 driver: the chaos explorer as a command-line tool.
//
//   rapilog_chaos --seed S              one episode from seed S
//   rapilog_chaos --seed S --episodes N corpus of N episodes (seeds S..S+N-1)
//   rapilog_chaos --replay FILE         re-execute a recorded schedule
//   rapilog_chaos --ablate-powerguard   plant the known violation (guard off)
//   rapilog_chaos --minutes M           wall-clock-bounded nightly sweep
//   rapilog_chaos --out DIR             write shrunken failing schedules there
//   rapilog_chaos --no-shrink           report failures without minimising
//
// Exit status: 0 if every episode's oracles held, 1 otherwise. Failing
// schedules are shrunk to minimal replayable files (see DESIGN.md).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/chaos/schedule.h"

namespace {

using rlchaos::ChaosExplorer;
using rlchaos::EpisodeConfig;
using rlchaos::EpisodeOutcome;
using rlchaos::ExplorerOptions;
using rlchaos::ExplorerReport;
using rlchaos::ShrunkFailure;

void PrintEpisode(const EpisodeConfig& cfg, const EpisodeOutcome& out) {
  std::printf("episode seed=%llu mode=%s disks=%s replicas=%zu events=%zu\n",
              static_cast<unsigned long long>(cfg.seed),
              rlharness::ToString(cfg.mode).c_str(),
              rlharness::ToString(cfg.disks).c_str(), cfg.replicas,
              cfg.events.size());
  std::printf("  %s\n", out.Summary().c_str());
  for (const std::string& v : out.violations) {
    std::printf("  VIOLATION: %s\n", v.c_str());
  }
}

bool WriteScheduleFile(const std::string& dir, const EpisodeConfig& cfg,
                       const char* tag) {
  std::ostringstream path;
  path << dir << "/chaos-" << tag << "-seed" << cfg.seed << ".schedule";
  std::ofstream out(path.str());
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.str().c_str());
    return false;
  }
  out << rlchaos::Serialize(cfg);
  std::printf("  wrote %s\n", path.str().c_str());
  return true;
}

int ReportAndPersist(const ExplorerReport& report, const std::string& out_dir) {
  std::printf("\nchaos: %llu episodes, %llu violations, corpus hash %016llx\n",
              static_cast<unsigned long long>(report.episodes_run),
              static_cast<unsigned long long>(report.violations),
              static_cast<unsigned long long>(report.corpus_hash));
  for (const ShrunkFailure& f : report.failures) {
    std::printf(
        "failing seed %llu: %zu events shrunk to %zu (%d replays)\n",
        static_cast<unsigned long long>(f.original.seed),
        f.original.events.size(), f.shrunk.minimal.events.size(),
        f.shrunk.replays_used);
    std::printf("  minimal schedule:\n%s",
                rlchaos::Serialize(f.shrunk.minimal).c_str());
    PrintEpisode(f.shrunk.minimal, f.shrunk.outcome);
    if (!out_dir.empty()) {
      WriteScheduleFile(out_dir, f.original, "original");
      WriteScheduleFile(out_dir, f.shrunk.minimal, "minimal");
    }
  }
  return report.ok() ? 0 : 1;
}

int RunReplay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  EpisodeConfig cfg;
  std::string error;
  if (!rlchaos::Parse(buf.str(), &cfg, &error)) {
    std::fprintf(stderr, "bad schedule file %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const EpisodeOutcome out = rlchaos::RunEpisode(cfg);
  PrintEpisode(cfg, out);
  return out.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t episodes = 1;
  int minutes = 0;
  bool shrink = true;
  bool ablate_powerguard = false;
  std::string replay_path;
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--episodes") {
      episodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--minutes") {
      minutes = std::atoi(next());
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--ablate-powerguard") {
      ablate_powerguard = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!replay_path.empty()) {
    return RunReplay(replay_path);
  }

  ExplorerOptions opts;
  opts.base_seed = seed;
  opts.episodes = episodes;
  opts.shrink = shrink;
  if (ablate_powerguard) {
    // The ablation: RapiLog without its power guard. A buffered-ack device
    // whose emergency flush never runs loses acked commits on a plug-pull —
    // the explorer must find it and shrink it to (at most) a few events.
    opts.gen.power_guard = false;
    opts.gen.force_rapilog = true;
    opts.gen.allow_replication = false;
    // Longer horizon: guard-off loss needs a cut landing inside the
    // post-restore recovery/checkpoint churn, so leave room for a full
    // recovery (restore + 300ms settle + open) inside the workload window —
    // otherwise the minimal reproducer races the episode wind-down.
    opts.gen.run_us_min = 600'000;
    opts.gen.run_us_max = 900'000;
  }

  if (minutes > 0) {
    // Nightly mode: keep consuming seeds until the wall-clock budget is
    // spent. Each episode is still individually deterministic in virtual
    // time; only how many we run depends on the machine.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::minutes(minutes);
    ExplorerReport total;
    uint64_t next_seed = seed;
    while (std::chrono::steady_clock::now() < deadline) {
      ExplorerOptions batch = opts;
      batch.base_seed = next_seed;
      batch.episodes = 10;
      const ExplorerReport r = ChaosExplorer(batch).Run();
      total.episodes_run += r.episodes_run;
      total.violations += r.violations;
      for (const ShrunkFailure& f : r.failures) {
        total.failures.push_back(f);
      }
      total.corpus_hash ^= r.corpus_hash;
      next_seed += batch.episodes;
    }
    return ReportAndPersist(total, out_dir);
  }

  const ExplorerReport report = ChaosExplorer(opts).Run();
  if (report.failures.empty() && episodes == 1) {
    // Single-episode runs print their outcome even when clean, so CI can
    // assert determinism by comparing two runs' hashes.
    const EpisodeConfig cfg = rlchaos::GenerateEpisode(seed, opts.gen);
    PrintEpisode(cfg, rlchaos::RunEpisode(cfg));
  }
  return ReportAndPersist(report, out_dir);
}

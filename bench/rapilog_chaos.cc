// E12 driver: the chaos explorer as a command-line tool.
//
//   rapilog_chaos --seed S              one episode from seed S
//   rapilog_chaos --seed S --episodes N corpus of N episodes (seeds S..S+N-1)
//   rapilog_chaos --replay FILE         re-execute a recorded schedule
//   rapilog_chaos --ablate-powerguard   plant the known violation (guard off)
//   rapilog_chaos --fleet N             E13 fleet episodes: N shards behind a
//                                       2PC coordinator, fleet fault motifs,
//                                       the atomicity oracle after wind-down
//   rapilog_chaos --cross-ratio X       pin the fleet cross-shard probability
//                                       (default: sampled per seed)
//   rapilog_chaos --budget N            nightly sweep: N episodes in batches
//   rapilog_chaos --minutes M           alias: budget = M * 120 episodes
//   rapilog_chaos --audit               run every episode twice under the
//                                       DivergenceAuditor; any divergence is
//                                       a failure with a first-event report
//   rapilog_chaos --trace               print applied events/recoveries with
//                                       virtual timestamps (stderr)
//   rapilog_chaos --trace-out FILE      record one episode (the base seed,
//                                       or the --replay schedule) with the
//                                       span tracer and write Chrome
//                                       trace-event JSON loadable in Perfetto
//   rapilog_chaos --jobs N              fan episodes (and audit pairs) across
//                                       N worker threads; 0 = all cores.
//                                       Output is byte-identical to --jobs 1
//   rapilog_chaos --out DIR             write shrunken failing schedules and
//                                       divergence reports there
//   rapilog_chaos --no-shrink           report failures without minimising
//
// Every mode is a pure function of its arguments: the --minutes wall-clock
// deadline of earlier revisions is gone (it made "how many seeds ran" depend
// on the machine), replaced by an episode budget computed once at startup.
//
// Exit status: 0 if every episode's oracles held (and, under --audit, every
// double-run agreed), 1 otherwise. Failing schedules are shrunk to minimal
// replayable files (see DESIGN.md).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/faults/chaos/chaos_explorer.h"
#include "src/faults/chaos/schedule.h"
#include "src/harness/parallel_runner.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/span_tracer.h"

namespace {

using rlchaos::ChaosExplorer;
using rlchaos::EpisodeConfig;
using rlchaos::EpisodeOutcome;
using rlchaos::ExplorerOptions;
using rlchaos::ExplorerReport;
using rlchaos::ShrunkFailure;

// --minutes M is kept as a deterministic alias: at the historical rate of
// roughly two episodes per second, one minute of the old wall-clock sweep
// covered ~120 episodes. The conversion happens once at startup; nothing in
// the run consults a real clock, so the same invocation always explores the
// same seeds.
constexpr uint64_t kEpisodesPerMinute = 120;

// Seeds per ExplorerReport batch in budget mode (progress granularity only).
constexpr uint64_t kBatchEpisodes = 10;

void PrintEpisode(const EpisodeConfig& cfg, const EpisodeOutcome& out) {
  std::printf("episode seed=%llu mode=%s disks=%s replicas=%zu events=%zu",
              static_cast<unsigned long long>(cfg.seed),
              rlharness::ToString(cfg.mode).c_str(),
              rlharness::ToString(cfg.disks).c_str(), cfg.replicas,
              cfg.events.size());
  if (cfg.fleet_shards > 0) {
    std::printf(" fleet-shards=%zu cross-ratio=%.4f", cfg.fleet_shards,
                cfg.cross_ratio);
  }
  std::printf("\n");
  std::printf("  %s\n", out.Summary().c_str());
  for (const std::string& v : out.violations) {
    std::printf("  VIOLATION: %s\n", v.c_str());
  }
  if (!out.flight_dump.empty()) {
    std::printf("  %s", out.flight_dump.c_str());
  }
  if (!out.causal_chain.empty()) {
    std::printf("  %s", out.causal_chain.c_str());
  }
}

// Dedicated traced re-execution: records the episode with the span tracer
// and writes Chrome trace-event JSON. Kept separate from the campaign run so
// campaigns never record (and never double-print) — the episode is a pure
// function of its config, so this re-run reproduces it exactly.
bool WriteEpisodeTrace(const EpisodeConfig& cfg, const std::string& path) {
  rlobs::SpanTracer tracer;
  rlchaos::RunOptions traced;
  traced.sink = &tracer;
  rlchaos::RunEpisode(cfg, traced);
  if (!rlobs::WriteChromeTrace(tracer, path)) {
    return false;
  }
  std::printf("  wrote %s (%zu trace events)\n", path.c_str(),
              tracer.records().size());
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  std::printf("  wrote %s\n", path.c_str());
  return true;
}

bool WriteScheduleFile(const std::string& dir, const EpisodeConfig& cfg,
                       const char* tag) {
  std::ostringstream path;
  path << dir << "/chaos-" << tag << "-seed" << cfg.seed << ".schedule";
  return WriteTextFile(path.str(), rlchaos::Serialize(cfg));
}

int ReportAndPersist(const ExplorerReport& report, const std::string& out_dir) {
  std::printf("\nchaos: %llu episodes, %llu violations, corpus hash %016llx\n",
              static_cast<unsigned long long>(report.episodes_run),
              static_cast<unsigned long long>(report.violations),
              static_cast<unsigned long long>(report.corpus_hash));
  for (const ShrunkFailure& f : report.failures) {
    std::printf(
        "failing seed %llu: %zu events shrunk to %zu (%d replays)\n",
        static_cast<unsigned long long>(f.original.seed),
        f.original.events.size(), f.shrunk.minimal.events.size(),
        f.shrunk.replays_used);
    std::printf("  minimal schedule:\n%s",
                rlchaos::Serialize(f.shrunk.minimal).c_str());
    PrintEpisode(f.shrunk.minimal, f.shrunk.outcome);
    if (!out_dir.empty()) {
      WriteScheduleFile(out_dir, f.original, "original");
      WriteScheduleFile(out_dir, f.shrunk.minimal, "minimal");
      // Post-mortem artifacts: the flight-recorder dump captured when the
      // shrunk episode's oracle fired, and a Perfetto trace of the minimal
      // reproducer.
      std::ostringstream flight_path;
      flight_path << out_dir << "/chaos-flightrec-seed" << f.original.seed
                  << ".txt";
      WriteTextFile(flight_path.str(), f.shrunk.outcome.flight_dump);
      if (!f.shrunk.outcome.causal_chain.empty()) {
        // The causal span chains of the convicted transactions (fleet
        // episodes): which client/coordinator/shard spans they crossed.
        std::ostringstream causal_path;
        causal_path << out_dir << "/chaos-causal-seed" << f.original.seed
                    << ".txt";
        WriteTextFile(causal_path.str(), f.shrunk.outcome.causal_chain);
      }
      std::ostringstream trace_path;
      trace_path << out_dir << "/chaos-trace-seed" << f.original.seed
                 << ".json";
      WriteEpisodeTrace(f.shrunk.minimal, trace_path.str());
    }
  }
  return report.ok() ? 0 : 1;
}

// Runs the divergence audit over seeds [base, base+episodes). Returns the
// number of diverging episodes; the first report per diverging seed is
// printed and (with --out) persisted for the nightly artifact upload.
// The run pairs fan across `jobs` worker threads (each audit runs the
// episode twice from the same seed); reports are reduced and printed in
// seed order, so the output is identical at any job count.
uint64_t AuditSeeds(uint64_t base, uint64_t episodes,
                    const rlchaos::GeneratorOptions& gen,
                    const std::string& out_dir, int jobs) {
  const size_t n = static_cast<size_t>(episodes);
  // With a single seed the only available parallelism is the pair itself.
  const int pair_jobs = n == 1 ? jobs : 1;
  const std::vector<rlharness::DivergenceReport> reports =
      rlharness::RunJobs<rlharness::DivergenceReport>(
          jobs, n, [base, &gen, pair_jobs](size_t i) {
            return rlchaos::AuditEpisodeDivergence(
                rlchaos::GenerateEpisode(base + i, gen), pair_jobs);
          });
  uint64_t diverged = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t seed = base + i;
    const rlharness::DivergenceReport& report = reports[i];
    if (report.identical) {
      continue;
    }
    const EpisodeConfig cfg = rlchaos::GenerateEpisode(seed, gen);
    ++diverged;
    std::printf("audit seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                report.Summary().c_str());
    if (!out_dir.empty()) {
      std::ostringstream path;
      path << out_dir << "/divergence-seed" << seed << ".txt";
      WriteTextFile(path.str(), report.Summary() + "\n\nschedule:\n" +
                                    rlchaos::Serialize(cfg));
    }
  }
  return diverged;
}

int RunReplay(const std::string& path, const rlchaos::RunOptions& run,
              const std::string& trace_out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  EpisodeConfig cfg;
  std::string error;
  if (!rlchaos::Parse(buf.str(), &cfg, &error)) {
    std::fprintf(stderr, "bad schedule file %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const EpisodeOutcome out = rlchaos::RunEpisode(cfg, run);
  PrintEpisode(cfg, out);
  if (!trace_out.empty() && !WriteEpisodeTrace(cfg, trace_out)) {
    return 2;
  }
  return out.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t episodes = 1;
  uint64_t budget = 0;  // 0 = not in budget (sweep) mode
  int jobs = 1;
  bool shrink = true;
  bool audit = false;
  bool ablate_powerguard = false;
  size_t fleet_shards = 0;
  double cross_ratio = -1.0;
  rlchaos::RunOptions run;
  std::string replay_path;
  std::string out_dir;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--episodes") {
      episodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--budget") {
      budget = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--minutes") {
      // Deterministic alias, converted exactly once here.
      budget = std::strtoull(next(), nullptr, 10) * kEpisodesPerMinute;
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (jobs <= 0) {
        jobs = rlharness::DefaultJobs();
      }
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--trace") {
      run.trace = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--ablate-powerguard") {
      ablate_powerguard = true;
    } else if (arg == "--fleet") {
      fleet_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cross-ratio") {
      cross_ratio = std::strtod(next(), nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!replay_path.empty()) {
    return RunReplay(replay_path, run, trace_out);
  }

  ExplorerOptions opts;
  opts.base_seed = seed;
  opts.episodes = episodes;
  opts.shrink = shrink;
  opts.run = run;
  opts.jobs = jobs;
  opts.gen.fleet_shards = fleet_shards;
  opts.gen.cross_ratio = cross_ratio;
  if (ablate_powerguard) {
    // The ablation: RapiLog without its power guard. A buffered-ack device
    // whose emergency flush never runs loses acked commits on a plug-pull —
    // the explorer must find it and shrink it to (at most) a few events.
    opts.gen.power_guard = false;
    opts.gen.force_rapilog = true;
    opts.gen.allow_replication = false;
    // Longer horizon: guard-off loss needs a cut landing inside the
    // post-restore recovery/checkpoint churn, so leave room for a full
    // recovery (restore + 300ms settle + open) inside the workload window —
    // otherwise the minimal reproducer races the episode wind-down.
    opts.gen.run_us_min = 600'000;
    opts.gen.run_us_max = 900'000;
  }

  if (budget > 0) {
    // Nightly mode: a fixed episode budget consumed in batches. Same seed
    // and budget, same seeds explored, same output — the sweep is as
    // deterministic as a single episode.
    ExplorerReport total;
    uint64_t next_seed = seed;
    uint64_t remaining = budget;
    while (remaining > 0) {
      ExplorerOptions batch = opts;
      batch.base_seed = next_seed;
      batch.episodes = remaining < kBatchEpisodes ? remaining : kBatchEpisodes;
      const ExplorerReport r = ChaosExplorer(batch).RunCampaign();
      total.episodes_run += r.episodes_run;
      total.violations += r.violations;
      for (const ShrunkFailure& f : r.failures) {
        total.failures.push_back(f);
      }
      total.corpus_hash ^= r.corpus_hash;
      next_seed += batch.episodes;
      remaining -= batch.episodes;
    }
    uint64_t diverged = 0;
    if (audit) {
      diverged = AuditSeeds(seed, budget, opts.gen, out_dir, jobs);
      std::printf("audit: %llu/%llu episodes diverged\n",
                  static_cast<unsigned long long>(diverged),
                  static_cast<unsigned long long>(budget));
    }
    const int status = ReportAndPersist(total, out_dir);
    return diverged > 0 ? 1 : status;
  }

  const ExplorerReport report = ChaosExplorer(opts).RunCampaign();
  if (report.failures.empty() && episodes == 1) {
    // Single-episode runs print their outcome even when clean, so CI can
    // assert determinism by comparing two runs' hashes.
    const EpisodeConfig cfg = rlchaos::GenerateEpisode(seed, opts.gen);
    PrintEpisode(cfg, rlchaos::RunEpisode(cfg, run));
  }
  if (!trace_out.empty()) {
    // Record the base seed's episode in a dedicated traced run, outside the
    // campaign, so corpus hashes stay independent of tracing.
    WriteEpisodeTrace(rlchaos::GenerateEpisode(seed, opts.gen), trace_out);
  }
  uint64_t diverged = 0;
  if (audit) {
    diverged = AuditSeeds(seed, episodes, opts.gen, out_dir, jobs);
    std::printf("audit: %llu/%llu episodes diverged\n",
                static_cast<unsigned long long>(diverged),
                static_cast<unsigned long long>(episodes));
  }
  const int status = ReportAndPersist(report, out_dir);
  return diverged > 0 ? 1 : status;
}

# Empty compiler generated dependencies file for bench_e5_disk_matrix.
# This may be replaced when dependencies are built.

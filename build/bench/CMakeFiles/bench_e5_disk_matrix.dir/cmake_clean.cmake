file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_disk_matrix.dir/bench_e5_disk_matrix.cc.o"
  "CMakeFiles/bench_e5_disk_matrix.dir/bench_e5_disk_matrix.cc.o.d"
  "bench_e5_disk_matrix"
  "bench_e5_disk_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_disk_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_tpcc_commercial.dir/bench_e4_tpcc_commercial.cc.o"
  "CMakeFiles/bench_e4_tpcc_commercial.dir/bench_e4_tpcc_commercial.cc.o.d"
  "bench_e4_tpcc_commercial"
  "bench_e4_tpcc_commercial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_tpcc_commercial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

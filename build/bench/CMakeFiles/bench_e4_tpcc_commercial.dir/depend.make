# Empty dependencies file for bench_e4_tpcc_commercial.
# This may be replaced when dependencies are built.

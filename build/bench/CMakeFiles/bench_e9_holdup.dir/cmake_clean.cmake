file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_holdup.dir/bench_e9_holdup.cc.o"
  "CMakeFiles/bench_e9_holdup.dir/bench_e9_holdup.cc.o.d"
  "bench_e9_holdup"
  "bench_e9_holdup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_holdup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

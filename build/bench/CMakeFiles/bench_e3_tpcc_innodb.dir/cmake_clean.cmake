file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_tpcc_innodb.dir/bench_e3_tpcc_innodb.cc.o"
  "CMakeFiles/bench_e3_tpcc_innodb.dir/bench_e3_tpcc_innodb.cc.o.d"
  "bench_e3_tpcc_innodb"
  "bench_e3_tpcc_innodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_tpcc_innodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e3_tpcc_innodb.
# This may be replaced when dependencies are built.

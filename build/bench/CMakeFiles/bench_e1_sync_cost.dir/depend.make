# Empty dependencies file for bench_e1_sync_cost.
# This may be replaced when dependencies are built.

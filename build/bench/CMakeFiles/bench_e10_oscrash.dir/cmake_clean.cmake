file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_oscrash.dir/bench_e10_oscrash.cc.o"
  "CMakeFiles/bench_e10_oscrash.dir/bench_e10_oscrash.cc.o.d"
  "bench_e10_oscrash"
  "bench_e10_oscrash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_oscrash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

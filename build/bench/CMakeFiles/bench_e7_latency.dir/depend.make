# Empty dependencies file for bench_e7_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_latency.dir/bench_e7_latency.cc.o"
  "CMakeFiles/bench_e7_latency.dir/bench_e7_latency.cc.o.d"
  "bench_e7_latency"
  "bench_e7_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_powerfail.dir/bench_e8_powerfail.cc.o"
  "CMakeFiles/bench_e8_powerfail.dir/bench_e8_powerfail.cc.o.d"
  "bench_e8_powerfail"
  "bench_e8_powerfail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_powerfail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_tpcc_pg.dir/bench_e2_tpcc_pg.cc.o"
  "CMakeFiles/bench_e2_tpcc_pg.dir/bench_e2_tpcc_pg.cc.o.d"
  "bench_e2_tpcc_pg"
  "bench_e2_tpcc_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_tpcc_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e2_tpcc_pg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_virt_overhead.dir/bench_e6_virt_overhead.cc.o"
  "CMakeFiles/bench_e6_virt_overhead.dir/bench_e6_virt_overhead.cc.o.d"
  "bench_e6_virt_overhead"
  "bench_e6_virt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_virt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

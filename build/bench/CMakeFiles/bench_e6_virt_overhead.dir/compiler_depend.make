# Empty compiler generated dependencies file for bench_e6_virt_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/db_lock_manager_test.dir/db_lock_manager_test.cc.o"
  "CMakeFiles/db_lock_manager_test.dir/db_lock_manager_test.cc.o.d"
  "db_lock_manager_test"
  "db_lock_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db_wal_test.cc" "tests/CMakeFiles/db_wal_test.dir/db_wal_test.cc.o" "gcc" "tests/CMakeFiles/db_wal_test.dir/db_wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/rapilog_db.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/rapilog_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapilog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/microkernel/CMakeFiles/rapilog_microkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rapilog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for crash_point_sweep_test.
# This may be replaced when dependencies are built.

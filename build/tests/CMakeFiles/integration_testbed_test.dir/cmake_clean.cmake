file(REMOVE_RECURSE
  "CMakeFiles/integration_testbed_test.dir/integration_testbed_test.cc.o"
  "CMakeFiles/integration_testbed_test.dir/integration_testbed_test.cc.o.d"
  "integration_testbed_test"
  "integration_testbed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

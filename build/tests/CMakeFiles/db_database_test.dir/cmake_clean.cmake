file(REMOVE_RECURSE
  "CMakeFiles/db_database_test.dir/db_database_test.cc.o"
  "CMakeFiles/db_database_test.dir/db_database_test.cc.o.d"
  "db_database_test"
  "db_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for storage_emergency_test.
# This may be replaced when dependencies are built.

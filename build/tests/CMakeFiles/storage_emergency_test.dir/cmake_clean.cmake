file(REMOVE_RECURSE
  "CMakeFiles/storage_emergency_test.dir/storage_emergency_test.cc.o"
  "CMakeFiles/storage_emergency_test.dir/storage_emergency_test.cc.o.d"
  "storage_emergency_test"
  "storage_emergency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_emergency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

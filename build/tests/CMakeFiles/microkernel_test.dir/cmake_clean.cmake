file(REMOVE_RECURSE
  "CMakeFiles/microkernel_test.dir/microkernel_test.cc.o"
  "CMakeFiles/microkernel_test.dir/microkernel_test.cc.o.d"
  "microkernel_test"
  "microkernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microkernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

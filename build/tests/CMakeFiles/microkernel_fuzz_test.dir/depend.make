# Empty dependencies file for microkernel_fuzz_test.
# This may be replaced when dependencies are built.

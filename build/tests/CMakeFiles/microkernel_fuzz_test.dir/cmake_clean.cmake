file(REMOVE_RECURSE
  "CMakeFiles/microkernel_fuzz_test.dir/microkernel_fuzz_test.cc.o"
  "CMakeFiles/microkernel_fuzz_test.dir/microkernel_fuzz_test.cc.o.d"
  "microkernel_fuzz_test"
  "microkernel_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microkernel_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

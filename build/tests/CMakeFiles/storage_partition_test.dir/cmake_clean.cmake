file(REMOVE_RECURSE
  "CMakeFiles/storage_partition_test.dir/storage_partition_test.cc.o"
  "CMakeFiles/storage_partition_test.dir/storage_partition_test.cc.o.d"
  "storage_partition_test"
  "storage_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

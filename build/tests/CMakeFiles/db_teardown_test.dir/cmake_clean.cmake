file(REMOVE_RECURSE
  "CMakeFiles/db_teardown_test.dir/db_teardown_test.cc.o"
  "CMakeFiles/db_teardown_test.dir/db_teardown_test.cc.o.d"
  "db_teardown_test"
  "db_teardown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_teardown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

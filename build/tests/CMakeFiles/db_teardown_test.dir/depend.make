# Empty dependencies file for db_teardown_test.
# This may be replaced when dependencies are built.

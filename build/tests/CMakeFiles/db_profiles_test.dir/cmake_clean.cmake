file(REMOVE_RECURSE
  "CMakeFiles/db_profiles_test.dir/db_profiles_test.cc.o"
  "CMakeFiles/db_profiles_test.dir/db_profiles_test.cc.o.d"
  "db_profiles_test"
  "db_profiles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_profiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

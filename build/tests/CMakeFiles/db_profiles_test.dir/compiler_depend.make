# Empty compiler generated dependencies file for db_profiles_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for rapilog_device_test.
# This may be replaced when dependencies are built.

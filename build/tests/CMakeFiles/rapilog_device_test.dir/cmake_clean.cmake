file(REMOVE_RECURSE
  "CMakeFiles/rapilog_device_test.dir/rapilog_device_test.cc.o"
  "CMakeFiles/rapilog_device_test.dir/rapilog_device_test.cc.o.d"
  "rapilog_device_test"
  "rapilog_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

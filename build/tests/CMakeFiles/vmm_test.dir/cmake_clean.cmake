file(REMOVE_RECURSE
  "CMakeFiles/vmm_test.dir/vmm_test.cc.o"
  "CMakeFiles/vmm_test.dir/vmm_test.cc.o.d"
  "vmm_test"
  "vmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/durability_checker_test.dir/durability_checker_test.cc.o"
  "CMakeFiles/durability_checker_test.dir/durability_checker_test.cc.o.d"
  "durability_checker_test"
  "durability_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

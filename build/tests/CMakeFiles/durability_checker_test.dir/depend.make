# Empty dependencies file for durability_checker_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/storage_disk_image_test.dir/storage_disk_image_test.cc.o"
  "CMakeFiles/storage_disk_image_test.dir/storage_disk_image_test.cc.o.d"
  "storage_disk_image_test"
  "storage_disk_image_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_disk_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

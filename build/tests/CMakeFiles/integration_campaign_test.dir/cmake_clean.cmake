file(REMOVE_RECURSE
  "CMakeFiles/integration_campaign_test.dir/integration_campaign_test.cc.o"
  "CMakeFiles/integration_campaign_test.dir/integration_campaign_test.cc.o.d"
  "integration_campaign_test"
  "integration_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rapilog_core.dir/rapilog_device.cc.o"
  "CMakeFiles/rapilog_core.dir/rapilog_device.cc.o.d"
  "librapilog_core.a"
  "librapilog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

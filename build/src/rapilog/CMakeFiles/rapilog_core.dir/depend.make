# Empty dependencies file for rapilog_core.
# This may be replaced when dependencies are built.

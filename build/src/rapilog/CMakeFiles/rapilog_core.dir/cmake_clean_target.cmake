file(REMOVE_RECURSE
  "librapilog_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapilog/rapilog_device.cc" "src/rapilog/CMakeFiles/rapilog_core.dir/rapilog_device.cc.o" "gcc" "src/rapilog/CMakeFiles/rapilog_core.dir/rapilog_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rapilog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapilog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rapilog_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for rapilog_harness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rapilog_harness.dir/testbed.cc.o"
  "CMakeFiles/rapilog_harness.dir/testbed.cc.o.d"
  "librapilog_harness.a"
  "librapilog_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librapilog_harness.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/testbed.cc" "src/harness/CMakeFiles/rapilog_harness.dir/testbed.cc.o" "gcc" "src/harness/CMakeFiles/rapilog_harness.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapilog/CMakeFiles/rapilog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rapilog_db.dir/DependInfo.cmake"
  "/root/repo/build/src/microkernel/CMakeFiles/rapilog_microkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rapilog_power.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rapilog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/rapilog_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rapilog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

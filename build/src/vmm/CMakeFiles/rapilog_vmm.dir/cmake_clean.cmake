file(REMOVE_RECURSE
  "CMakeFiles/rapilog_vmm.dir/virtual_block_device.cc.o"
  "CMakeFiles/rapilog_vmm.dir/virtual_block_device.cc.o.d"
  "CMakeFiles/rapilog_vmm.dir/vm.cc.o"
  "CMakeFiles/rapilog_vmm.dir/vm.cc.o.d"
  "librapilog_vmm.a"
  "librapilog_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rapilog_vmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librapilog_vmm.a"
)

file(REMOVE_RECURSE
  "librapilog_storage.a"
)

# Empty dependencies file for rapilog_storage.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/rapilog_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/rapilog_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/block_device.cc" "src/storage/CMakeFiles/rapilog_storage.dir/block_device.cc.o" "gcc" "src/storage/CMakeFiles/rapilog_storage.dir/block_device.cc.o.d"
  "/root/repo/src/storage/disk_image.cc" "src/storage/CMakeFiles/rapilog_storage.dir/disk_image.cc.o" "gcc" "src/storage/CMakeFiles/rapilog_storage.dir/disk_image.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/storage/CMakeFiles/rapilog_storage.dir/disk_model.cc.o" "gcc" "src/storage/CMakeFiles/rapilog_storage.dir/disk_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rapilog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rapilog_storage.dir/block.cc.o"
  "CMakeFiles/rapilog_storage.dir/block.cc.o.d"
  "CMakeFiles/rapilog_storage.dir/block_device.cc.o"
  "CMakeFiles/rapilog_storage.dir/block_device.cc.o.d"
  "CMakeFiles/rapilog_storage.dir/disk_image.cc.o"
  "CMakeFiles/rapilog_storage.dir/disk_image.cc.o.d"
  "CMakeFiles/rapilog_storage.dir/disk_model.cc.o"
  "CMakeFiles/rapilog_storage.dir/disk_model.cc.o.d"
  "librapilog_storage.a"
  "librapilog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rapilog_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rapilog_workload.dir/kv_workload.cc.o"
  "CMakeFiles/rapilog_workload.dir/kv_workload.cc.o.d"
  "CMakeFiles/rapilog_workload.dir/tpcc_lite.cc.o"
  "CMakeFiles/rapilog_workload.dir/tpcc_lite.cc.o.d"
  "librapilog_workload.a"
  "librapilog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librapilog_workload.a"
)

file(REMOVE_RECURSE
  "librapilog_faults.a"
)

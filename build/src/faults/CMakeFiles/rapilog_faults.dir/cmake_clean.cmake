file(REMOVE_RECURSE
  "CMakeFiles/rapilog_faults.dir/durability_checker.cc.o"
  "CMakeFiles/rapilog_faults.dir/durability_checker.cc.o.d"
  "librapilog_faults.a"
  "librapilog_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

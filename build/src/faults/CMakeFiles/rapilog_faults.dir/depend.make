# Empty dependencies file for rapilog_faults.
# This may be replaced when dependencies are built.

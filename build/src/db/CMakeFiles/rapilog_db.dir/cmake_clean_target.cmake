file(REMOVE_RECURSE
  "librapilog_db.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rapilog_db.dir/btree.cc.o"
  "CMakeFiles/rapilog_db.dir/btree.cc.o.d"
  "CMakeFiles/rapilog_db.dir/buffer_pool.cc.o"
  "CMakeFiles/rapilog_db.dir/buffer_pool.cc.o.d"
  "CMakeFiles/rapilog_db.dir/database.cc.o"
  "CMakeFiles/rapilog_db.dir/database.cc.o.d"
  "CMakeFiles/rapilog_db.dir/lock_manager.cc.o"
  "CMakeFiles/rapilog_db.dir/lock_manager.cc.o.d"
  "CMakeFiles/rapilog_db.dir/wal.cc.o"
  "CMakeFiles/rapilog_db.dir/wal.cc.o.d"
  "librapilog_db.a"
  "librapilog_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

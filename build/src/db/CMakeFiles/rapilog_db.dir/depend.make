# Empty dependencies file for rapilog_db.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librapilog_microkernel.a"
)

# Empty dependencies file for rapilog_microkernel.
# This may be replaced when dependencies are built.

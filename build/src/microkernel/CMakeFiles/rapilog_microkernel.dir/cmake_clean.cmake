file(REMOVE_RECURSE
  "CMakeFiles/rapilog_microkernel.dir/kernel.cc.o"
  "CMakeFiles/rapilog_microkernel.dir/kernel.cc.o.d"
  "librapilog_microkernel.a"
  "librapilog_microkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_microkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rapilog_power.
# This may be replaced when dependencies are built.

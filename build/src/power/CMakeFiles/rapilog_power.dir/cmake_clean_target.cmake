file(REMOVE_RECURSE
  "librapilog_power.a"
)

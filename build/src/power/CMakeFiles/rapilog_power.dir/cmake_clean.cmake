file(REMOVE_RECURSE
  "CMakeFiles/rapilog_power.dir/power.cc.o"
  "CMakeFiles/rapilog_power.dir/power.cc.o.d"
  "librapilog_power.a"
  "librapilog_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

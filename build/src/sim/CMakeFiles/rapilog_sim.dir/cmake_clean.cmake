file(REMOVE_RECURSE
  "CMakeFiles/rapilog_sim.dir/check.cc.o"
  "CMakeFiles/rapilog_sim.dir/check.cc.o.d"
  "CMakeFiles/rapilog_sim.dir/crc32.cc.o"
  "CMakeFiles/rapilog_sim.dir/crc32.cc.o.d"
  "CMakeFiles/rapilog_sim.dir/rng.cc.o"
  "CMakeFiles/rapilog_sim.dir/rng.cc.o.d"
  "CMakeFiles/rapilog_sim.dir/simulator.cc.o"
  "CMakeFiles/rapilog_sim.dir/simulator.cc.o.d"
  "CMakeFiles/rapilog_sim.dir/stats.cc.o"
  "CMakeFiles/rapilog_sim.dir/stats.cc.o.d"
  "CMakeFiles/rapilog_sim.dir/time.cc.o"
  "CMakeFiles/rapilog_sim.dir/time.cc.o.d"
  "librapilog_sim.a"
  "librapilog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapilog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

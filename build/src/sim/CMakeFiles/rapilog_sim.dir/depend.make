# Empty dependencies file for rapilog_sim.
# This may be replaced when dependencies are built.

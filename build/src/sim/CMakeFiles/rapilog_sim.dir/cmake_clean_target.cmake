file(REMOVE_RECURSE
  "librapilog_sim.a"
)

// TPC-C demo: the paper's headline comparison as a runnable example.
//
// Runs the same OLTP workload in three deployments on one shared rotating
// disk and prints throughput and latency side by side:
//   native   — DBMS on bare metal, synchronous durable commits
//   virt     — DBMS in a VM, paravirtual disks, synchronous commits
//   rapilog  — DBMS in a VM with the log disk backed by RapiLog
//
//   ./tpcc_demo [clients]     (default 16)
#include <cstdio>
#include <cstdlib>

#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/tpcc_lite.h"

using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlharness::Testbed;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

namespace {

struct Result {
  double txns_per_sec = 0;
  Duration p50;
  Duration p99;
};

Result RunOne(DeploymentMode mode, int clients) {
  Simulator sim(1234);
  rlharness::TestbedOptions opts;
  opts.mode = mode;
  opts.disks = DiskSetup::kSharedHdd;
  opts.db.pool_pages = 2048;
  opts.db.journal_pages = 1200;
  opts.db.profile.checkpoint_dirty_pages = 512;
  Testbed bed(sim, opts);

  rlwork::TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 8;
  cfg.customers_per_district = 50;
  cfg.items = 1000;
  rlwork::TpccLite tpcc(sim, cfg);

  bool stop = false;
  Result result;
  sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w, int n_clients,
               bool& stop_flag, Result& out) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    for (int c = 0; c < n_clients; ++c) {
      s.Spawn(w.RunClient(b.db(), c, &stop_flag, nullptr));
    }
    co_await s.Sleep(Duration::Millis(500));  // warmup
    w.stats().committed.Reset();
    w.stats().txn_latency.Reset();
    const rlsim::TimePoint t0 = s.now();
    co_await s.Sleep(Duration::Seconds(3));
    out.txns_per_sec = static_cast<double>(w.stats().committed.value()) /
                       (s.now() - t0).ToSecondsF();
    out.p50 = w.stats().txn_latency.PercentileDuration(50);
    out.p99 = w.stats().txn_latency.PercentileDuration(99);
    stop_flag = true;
  }(sim, bed, tpcc, clients, stop, result));
  sim.Run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("TPC-C-lite, %d clients, pg-like engine, one shared 7200rpm "
              "disk (3 s simulated, steady state)\n\n",
              clients);
  std::printf("%-10s %12s %12s %12s\n", "mode", "txns/s", "p50", "p99");

  const Result native = RunOne(DeploymentMode::kNative, clients);
  std::printf("%-10s %12.0f %12s %12s\n", "native", native.txns_per_sec,
              rlsim::ToString(native.p50).c_str(),
              rlsim::ToString(native.p99).c_str());
  const Result virt = RunOne(DeploymentMode::kVirt, clients);
  std::printf("%-10s %12.0f %12s %12s\n", "virt", virt.txns_per_sec,
              rlsim::ToString(virt.p50).c_str(),
              rlsim::ToString(virt.p99).c_str());
  const Result rapi = RunOne(DeploymentMode::kRapiLog, clients);
  std::printf("%-10s %12.0f %12s %12s\n", "rapilog", rapi.txns_per_sec,
              rlsim::ToString(rapi.p50).c_str(),
              rlsim::ToString(rapi.p99).c_str());

  std::printf("\nrapilog/virt speedup: %.2fx (durability guarantee intact)\n",
              virt.txns_per_sec > 0 ? rapi.txns_per_sec / virt.txns_per_sec
                                    : 0.0);
  return 0;
}

// Quickstart: the RapiLog public API in ~60 effective lines.
//
// Builds the minimal trusted stack by hand — power supply, one disk,
// RapiLogDevice — writes through it, pulls the plug, and shows that every
// acknowledged byte survived on the medium.
//
//   ./quickstart
#include <cstdio>
#include <vector>

#include "src/power/power.h"
#include "src/rapilog/rapilog_device.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

using rapilog::RapiLogDevice;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

namespace {

// Powers the disk off/on with the rails.
class DiskOnRails : public rlpow::PowerSink {
 public:
  explicit DiskOnRails(rlstor::SimBlockDevice& disk) : disk_(disk) {}
  void OnPowerDown() override { disk_.PowerLoss(); }
  void OnPowerRestore() override { disk_.PowerRestore(); }

 private:
  rlstor::SimBlockDevice& disk_;
};

}  // namespace

int main() {
  Simulator sim;

  // A commodity PSU: ~32 ms of hold-up at half load, power-fail warning
  // 200 us after AC loss.
  rlpow::PowerSupply psu(sim, rlpow::PsuParams{});

  // A 7200 rpm disk with a volatile write-back cache.
  rlstor::SimBlockDevice disk(
      sim,
      rlstor::SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20},
                                      .name = "log-disk"},
      rlstor::MakeDefaultHdd());

  // RapiLog in front of it. It registers with the PSU (to get the power-fail
  // warning) and derives its buffer budget from the hold-up window.
  RapiLogDevice rapi(sim, psu, disk, rapilog::RapiLogOptions{});
  DiskOnRails rails(disk);
  psu.Register(&rails);

  std::printf("RapiLog admission budget: %llu KiB (from a %s hold-up)\n",
              static_cast<unsigned long long>(rapi.max_buffer_bytes() / 1024),
              rlsim::ToString(psu.GuaranteedWindowAfterWarning()).c_str());

  sim.Spawn([](Simulator& s, rlpow::PowerSupply& supply,
               RapiLogDevice& dev) -> Task<void> {
    // 64 "log writes" of 4 KiB each. Each ack returns in microseconds even
    // though the disk needs milliseconds per durable write.
    const rlsim::TimePoint t0 = s.now();
    for (uint64_t i = 0; i < 64; ++i) {
      const std::vector<uint8_t> block(4096, static_cast<uint8_t>(i));
      const rlstor::BlockStatus st =
          co_await dev.Write(i * 8, block, /*fua=*/false);
      if (st != rlstor::BlockStatus::kOk) {
        std::printf("write %llu failed: %s\n",
                    static_cast<unsigned long long>(i),
                    rlstor::ToString(st).c_str());
        co_return;
      }
    }
    std::printf("64 x 4 KiB writes acknowledged in %s (still buffered: %llu KiB)\n",
                rlsim::ToString(s.now() - t0).c_str(),
                static_cast<unsigned long long>(dev.buffered_bytes() / 1024));

    // Pull the plug mid-drain. The PowerGuard flushes the buffer within the
    // hold-up window before the rails drop.
    supply.CutMains();
  }(sim, psu, rapi));

  sim.Run();  // runs to quiescence: warning -> emergency flush -> power down

  // Inspect the medium: every acknowledged sector must be durable.
  uint64_t durable = 0;
  for (uint64_t i = 0; i < 64 * 8; ++i) {
    if (disk.image().state(i) == rlstor::SectorState::kDurable) {
      ++durable;
    }
  }
  std::printf("after power cut: %llu/512 acknowledged sectors durable, "
              "lost_data=%s\n",
              static_cast<unsigned long long>(durable),
              rapi.lost_data() ? "YES (bug!)" : "no");
  std::printf("emergency flushes: %lld, drained bytes: %lld\n",
              static_cast<long long>(rapi.stats().emergency_flushes.value()),
              static_cast<long long>(rapi.stats().drained_bytes.value()));
  return rapi.lost_data() ? 1 : 0;
}

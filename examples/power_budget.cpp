// Power-budget explorer: how the electrical configuration translates into
// RapiLog's admission budget, and what happens when the budget is wrong.
//
//   ./power_budget
#include <cstdio>
#include <vector>

#include "src/power/power.h"
#include "src/rapilog/rapilog_device.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

namespace {

class DiskOnRails : public rlpow::PowerSink {
 public:
  explicit DiskOnRails(rlstor::SimBlockDevice& disk) : disk_(disk) {}
  void OnPowerDown() override { disk_.PowerLoss(); }
  void OnPowerRestore() override { disk_.PowerRestore(); }

 private:
  rlstor::SimBlockDevice& disk_;
};

// Fills the buffer to its cap, cuts the mains, and reports whether the
// emergency flush beat the rails.
bool TrialSurvives(double claimed_drain_mbps, bool guard) {
  Simulator sim(5);
  rlpow::PowerSupply psu(sim, rlpow::PsuParams{});
  rlstor::SimBlockDevice disk(
      sim,
      rlstor::SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20}},
      rlstor::MakeDefaultHdd());
  rapilog::RapiLogOptions opt;
  opt.worst_case_drain_mbps = claimed_drain_mbps;
  opt.enable_power_guard = guard;
  rapilog::RapiLogDevice rapi(sim, psu, disk, opt);
  DiskOnRails rails(disk);
  psu.Register(&rails);

  sim.Spawn([](Simulator& s, rlpow::PowerSupply& supply,
               rapilog::RapiLogDevice& dev) -> Task<void> {
    // Fill the buffer to the admission limit with sequential log blocks.
    uint64_t lba = 0;
    const std::vector<uint8_t> block(8192, 0x7A);
    while (dev.buffered_bytes() + block.size() <= dev.max_buffer_bytes()) {
      co_await dev.Write(lba, block, false);
      lba += 16;
    }
    supply.CutMains();
    co_await s.Sleep(Duration::Zero());
  }(sim, psu, rapi));
  sim.Run();
  return !rapi.lost_data();
}

}  // namespace

int main() {
  std::printf("Budget derivation for a commodity ATX PSU (16 ms hold-up at "
              "full load):\n\n");
  std::printf("%-22s %-12s %-12s\n", "load", "window", "budget");
  for (const double load : {400.0, 300.0, 200.0, 100.0}) {
    Simulator sim;
    rlpow::PsuParams p;
    p.system_load_watts = load;
    rlpow::PowerSupply psu(sim, p);
    rlstor::SimBlockDevice disk(
        sim,
        rlstor::SimBlockDevice::Options{.geometry = {.sector_count = 1 << 20}},
        rlstor::MakeDefaultHdd());
    rapilog::RapiLogDevice rapi(sim, psu, disk, rapilog::RapiLogOptions{});
    std::printf("%-22s %-12s %llu KiB\n",
                (std::to_string(static_cast<int>(load)) + " W").c_str(),
                rlsim::ToString(psu.GuaranteedWindowAfterWarning()).c_str(),
                static_cast<unsigned long long>(rapi.max_buffer_bytes() /
                                                1024));
  }

  std::printf("\nFull-buffer plug-pull trials (does the emergency flush beat "
              "the rails?):\n\n");
  struct TrialSpec {
    const char* name;
    double mbps;
    bool guard;
  };
  const TrialSpec trials[] = {
      {"honest budget (40 MB/s), guard on", 40.0, true},
      {"overstated budget (400 MB/s), guard on", 400.0, true},
      {"honest budget, guard OFF (ablation)", 40.0, false},
  };
  for (const TrialSpec& t : trials) {
    const bool ok = TrialSurvives(t.mbps, t.guard);
    std::printf("  %-42s -> %s\n", t.name,
                ok ? "no data lost" : "ACKED DATA LOST");
  }
  std::printf(
      "\nThe budget must be honest: it is the contract between the admission\n"
      "control and the electrons left in the PSU capacitors.\n");
  return 0;
}

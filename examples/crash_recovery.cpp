// Crash-recovery walkthrough: the paper's plug-pull experiment, narrated.
//
// Runs OLTP load under RapiLog, kills the guest OS once and cuts mains power
// once, recovering and machine-verifying durability after each fault.
//
//   ./crash_recovery
#include <cstdio>

#include "src/faults/durability_checker.h"
#include "src/harness/testbed.h"
#include "src/sim/simulator.h"
#include "src/workload/tpcc_lite.h"

using rlharness::DeploymentMode;
using rlharness::DiskSetup;
using rlharness::Testbed;
using rlsim::Duration;
using rlsim::Simulator;
using rlsim::Task;

int main() {
  Simulator sim(77);
  rlharness::TestbedOptions opts;
  opts.mode = DeploymentMode::kRapiLog;
  opts.disks = DiskSetup::kSharedHdd;
  Testbed bed(sim, opts);

  rlwork::TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 8;
  cfg.customers_per_district = 40;
  cfg.items = 500;
  rlwork::TpccLite tpcc(sim, cfg);
  rlfault::DurabilityChecker checker;
  bool all_ok = true;

  sim.Spawn([](Simulator& s, Testbed& b, rlwork::TpccLite& w,
               rlfault::DurabilityChecker& chk, bool& ok) -> Task<void> {
    co_await b.Start();
    co_await w.LoadInitial(b.db());
    std::printf("[%8.3fs] database loaded, starting 6 clients\n",
                s.now().ToSecondsF());

    // --- Fault 1: guest OS crash ---------------------------------------
    auto stop1 = std::make_shared<bool>(false);
    for (int c = 0; c < 6; ++c) {
      s.Spawn(w.RunClient(b.db(), c, stop1.get(), &chk));
    }
    co_await s.Sleep(Duration::Millis(400));
    std::printf("[%8.3fs] committed so far: %lld — crashing the guest OS "
                "(RapiLog buffer: %llu bytes)\n",
                s.now().ToSecondsF(),
                static_cast<long long>(w.stats().committed.value()),
                static_cast<unsigned long long>(b.rapilog()->buffered_bytes()));
    b.CrashGuest();
    *stop1 = true;
    co_await b.RecoverAfterGuestCrash();
    auto verdict = co_await chk.VerifyAfterRecovery(b.db());
    std::printf("[%8.3fs] guest rebooted & recovered: %s\n",
                s.now().ToSecondsF(), verdict.Summary().c_str());
    ok = ok && verdict.ok();

    // --- Fault 2: mains power cut ---------------------------------------
    auto stop2 = std::make_shared<bool>(false);
    for (int c = 0; c < 6; ++c) {
      s.Spawn(w.RunClient(b.db(), 100 + c, stop2.get(), &chk));
    }
    co_await s.Sleep(Duration::Millis(400));
    std::printf("[%8.3fs] pulling the plug (hold-up window: %s)\n",
                s.now().ToSecondsF(),
                rlsim::ToString(b.psu().GuaranteedWindowAfterWarning())
                    .c_str());
    b.CutPower();
    *stop2 = true;
    co_await s.Sleep(Duration::Seconds(1));
    co_await b.RestorePowerAndRecover();
    verdict = co_await chk.VerifyAfterRecovery(b.db());
    std::printf("[%8.3fs] power restored & recovered: %s\n",
                s.now().ToSecondsF(), verdict.Summary().c_str());
    std::printf("[%8.3fs] RapiLog lost data across both faults: %s\n",
                s.now().ToSecondsF(),
                b.rapilog()->lost_data() ? "YES (bug!)" : "no");
    ok = ok && verdict.ok() && !b.rapilog()->lost_data();
  }(sim, bed, tpcc, checker, all_ok));

  sim.Run();
  std::printf("\n%s\n", all_ok ? "ALL DURABILITY CHECKS PASSED"
                               : "DURABILITY VIOLATION DETECTED");
  return all_ok ? 0 : 1;
}

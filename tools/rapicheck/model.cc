#include "tools/rapicheck/model.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace rapicheck {

namespace {

using lintlib::FindWord;
using lintlib::IsIdentChar;
using lintlib::TailIdentifier;
using lintlib::TrimView;

bool IsKeyword(std::string_view token) {
  static constexpr const char* kKeywords[] = {
      "if",         "for",      "while",        "switch",     "return",
      "co_return",  "co_await", "co_yield",     "sizeof",     "alignof",
      "catch",      "new",      "delete",       "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast", "decltype",
      "noexcept",   "void",     "throw",        "do",         "else",
  };
  for (const char* k : kKeywords) {
    if (token == k) return true;
  }
  return false;
}

// An enumerator by this repo's convention: kUpperCamel.
bool LooksLikeEnumerator(std::string_view token) {
  return token.size() >= 2 && token[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(token[1])) != 0;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kEnum, kFunction, kSwitch, kBlock };
  Kind kind;
  int id = 0;
  int index = -1;    // enums/switches/functions index for those kinds
  std::string name;  // class name for kClass
};

class Builder {
 public:
  explicit Builder(Model* model) : model_(model) {}

  void AddFile(int file_index) {
    file_index_ = file_index;
    const lintlib::SourceFile& file = model_->files[file_index];
    scopes_.clear();
    header_.clear();
    enum_piece_.clear();
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      const int ln = static_cast<int>(i) + 1;
      // Pattern extraction uses the scope state at line start; the repo's
      // clang-format puts case labels, calls and acquisitions on their own
      // lines below the brace that opened their scope, so this is exact for
      // the idioms the rules consume.
      ExtractPatterns(line, ln);
      ScanStructure(line, ln);
    }
    // Unterminated scopes (unbalanced braces should not happen on stripped
    // well-formed code, but stay safe): close functions at EOF.
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::Kind::kFunction) {
        model_->functions[s.index].end_line =
            static_cast<int>(file.code.size());
      }
    }
  }

 private:
  const lintlib::SourceFile& file() const {
    return model_->files[file_index_];
  }

  int CurrentFunction() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return it->index;
    }
    return -1;
  }

  // Innermost switch, not crossing a function boundary (a lambda inside a
  // case arm is its own world).
  int CurrentSwitch() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kSwitch) return it->index;
      if (it->kind == Scope::Kind::kFunction) return -1;
    }
    return -1;
  }

  std::vector<int> ScopeIdsFromFunction() const {
    std::vector<int> ids;
    size_t start = 0;
    for (size_t i = scopes_.size(); i > 0; --i) {
      if (scopes_[i - 1].kind == Scope::Kind::kFunction) {
        start = i - 1;
        break;
      }
    }
    for (size_t i = start; i < scopes_.size(); ++i) {
      ids.push_back(scopes_[i].id);
    }
    return ids;
  }

  bool InEnum() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::Kind::kEnum;
  }

  // --- per-line pattern extraction ---------------------------------------

  void ExtractPatterns(const std::string& line, int ln) {
    if (InEnum()) return;  // enumerators are handled by ScanStructure
    const int fn = CurrentFunction();
    ExtractCaseLabels(line, ln);
    ExtractEnumUses(line, ln, fn);
    if (fn >= 0) {
      ExtractAcquisitions(line, ln, fn);
      ExtractCalls(line, ln, fn);
    } else {
      ExtractConstant(line, ln);
    }
  }

  void ExtractCaseLabels(const std::string& line, int ln) {
    const int sw = CurrentSwitch();
    if (sw < 0) return;
    SwitchStmt& stmt = model_->switches[sw];
    for (size_t pos = FindWord(line, "case"); pos != std::string_view::npos;
         pos = FindWord(line, "case", pos + 1)) {
      // Label text runs to the first ':' that is not part of a '::'.
      size_t colon = std::string_view::npos;
      for (size_t i = pos + 4; i < line.size(); ++i) {
        if (line[i] != ':') continue;
        if (i + 1 < line.size() && line[i + 1] == ':') {
          ++i;
          continue;
        }
        if (i > 0 && line[i - 1] == ':') continue;
        colon = i;
        break;
      }
      if (colon == std::string_view::npos) continue;
      const std::string_view label =
          TrimView(std::string_view(line).substr(pos + 4, colon - pos - 4));
      const size_t sep = label.rfind("::");
      if (sep == std::string_view::npos) continue;  // unqualified: not modeled
      const std::string_view enumerator = label.substr(sep + 2);
      std::string_view qualifier = label.substr(0, sep);
      const size_t prev = qualifier.rfind("::");
      if (prev != std::string_view::npos) qualifier = qualifier.substr(prev + 2);
      if (enumerator.empty() || qualifier.empty()) continue;
      stmt.cases.emplace_back(enumerator);
      if (stmt.enum_name.empty()) stmt.enum_name = std::string(qualifier);
    }
    const size_t def = FindWord(line, "default");
    if (def != std::string_view::npos) {
      size_t after = def + 7;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == ':') {
        stmt.has_default = true;
        stmt.default_line = ln;
      }
    }
  }

  void ExtractEnumUses(const std::string& line, int ln, int fn) {
    const std::string_view trimmed = TrimView(line);
    const bool is_case_line = trimmed.substr(0, 5) == "case ";
    for (size_t pos = line.find("::"); pos != std::string::npos;
         pos = line.find("::", pos + 1)) {
      // Qualifier: identifier run ending at pos.
      size_t bstart = pos;
      while (bstart > 0 && IsIdentChar(line[bstart - 1])) --bstart;
      if (bstart == pos) continue;
      // Enumerator: identifier run starting after "::".
      size_t aend = pos + 2;
      while (aend < line.size() && IsIdentChar(line[aend])) ++aend;
      if (aend == pos + 2) continue;
      const std::string_view qualifier(line.data() + bstart, pos - bstart);
      const std::string_view enumerator(line.data() + pos + 2, aend - pos - 2);
      if (!LooksLikeEnumerator(enumerator)) continue;
      EnumUse use;
      use.enum_name = std::string(qualifier);
      use.enumerator = std::string(enumerator);
      use.file = file().path;
      use.line = ln;
      use.function_index = fn;
      if (is_case_line) {
        use.kind = EnumUse::Kind::kCase;
      } else if (AdjacentComparison(line, bstart, aend)) {
        use.kind = EnumUse::Kind::kCompare;
      } else {
        use.kind = EnumUse::Kind::kProduce;
      }
      model_->uses.push_back(std::move(use));
    }
  }

  static bool AdjacentComparison(const std::string& line, size_t bstart,
                                 size_t aend) {
    size_t before = bstart;
    while (before > 0 && line[before - 1] == ' ') --before;
    if (before >= 2) {
      const std::string_view op = std::string_view(line).substr(before - 2, 2);
      if (op == "==" || op == "!=") return true;
    }
    size_t after = aend;
    while (after < line.size() && line[after] == ' ') ++after;
    if (after + 1 < line.size()) {
      const std::string_view op = std::string_view(line).substr(after, 2);
      if (op == "==" || op == "!=") return true;
    }
    return false;
  }

  void ExtractAcquisitions(const std::string& line, int ln, int fn) {
    // RAII mutexes: `auto guard = co_await apply_mutex_->Lock();` — the
    // guard lives until its scope closes. Manual lock tables:
    // `co_await locks_->Acquire(txn, key)` — held until function end
    // (released by ReleaseAll, which linear scanning does not model).
    struct Probe {
      const char* pattern;
      bool scoped;
    };
    static constexpr Probe kProbes[] = {
        {"->Lock()", true},
        {".Lock()", true},
        {"->Acquire(", false},
        {".Acquire(", false},
    };
    for (const Probe& probe : kProbes) {
      for (size_t pos = line.find(probe.pattern); pos != std::string::npos;
           pos = line.find(probe.pattern, pos + 1)) {
        const std::string_view node =
            TailIdentifier(std::string_view(line).substr(0, pos));
        if (node.empty()) continue;
        FuncEvent ev;
        ev.kind = FuncEvent::Kind::kAcquire;
        ev.name = std::string(node);
        ev.line = ln;
        ev.scoped_lock = probe.scoped;
        ev.scope_ids = ScopeIdsFromFunction();
        model_->functions[fn].events.push_back(std::move(ev));
      }
    }
  }

  void ExtractCalls(const std::string& line, int ln, int fn) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (!IsIdentChar(line[i])) continue;
      size_t end = i;
      while (end < line.size() && IsIdentChar(line[end])) ++end;
      const std::string_view token(line.data() + i, end - i);
      const size_t next = end;
      if (next < line.size() && line[next] == '(' && !IsKeyword(token) &&
          std::isdigit(static_cast<unsigned char>(token[0])) == 0) {
        FuncEvent ev;
        ev.kind = FuncEvent::Kind::kCall;
        ev.name = std::string(token);
        ev.line = ln;
        ev.scope_ids = ScopeIdsFromFunction();
        model_->functions[fn].events.push_back(std::move(ev));
      }
      i = end;
    }
  }

  void ExtractConstant(const std::string& line, int ln) {
    if (FindWord(line, "constexpr") == std::string_view::npos) return;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) return;
    const std::string_view name =
        TailIdentifier(std::string_view(line).substr(0, eq));
    if (name.empty()) return;
    std::string_view rhs = TrimView(std::string_view(line).substr(eq + 1));
    const size_t semi = rhs.find(';');
    if (semi != std::string_view::npos) rhs = TrimView(rhs.substr(0, semi));
    if (rhs.empty()) return;
    char* parse_end = nullptr;
    const std::string rhs_str(rhs);
    const long long value = std::strtoll(rhs_str.c_str(), &parse_end, 0);
    if (parse_end == nullptr || *parse_end != '\0') return;
    ConstDef def;
    def.name = std::string(name);
    def.value = value;
    def.file = file().path;
    def.line = ln;
    model_->constants.push_back(std::move(def));
  }

  // --- structural scan ----------------------------------------------------

  void ScanStructure(const std::string& line, int ln) {
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (InEnum()) {
        if (c == '}') {
          FlushEnumerator(ln);
          scopes_.pop_back();
          header_.clear();
        } else if (c == ',') {
          FlushEnumerator(ln);
        } else {
          if (enum_piece_.empty() && c != ' ') enum_piece_line_ = ln;
          enum_piece_.push_back(c);
        }
        continue;
      }
      switch (c) {
        case '{':
          ClassifyAndPush(ln);
          header_.clear();
          break;
        case '}':
          if (!scopes_.empty()) {
            if (scopes_.back().kind == Scope::Kind::kFunction) {
              model_->functions[scopes_.back().index].end_line = ln;
            }
            scopes_.pop_back();
          }
          header_.clear();
          break;
        case ';':
          header_.clear();
          break;
        default:
          header_.push_back(c);
      }
    }
    if (!header_.empty()) header_.push_back(' ');  // line break as separator
  }

  void ClassifyAndPush(int ln) {
    const std::string_view h = TrimView(header_);
    Scope scope;
    scope.id = next_scope_id_++;
    const bool in_code =
        !scopes_.empty() && (scopes_.back().kind == Scope::Kind::kFunction ||
                             scopes_.back().kind == Scope::Kind::kBlock ||
                             scopes_.back().kind == Scope::Kind::kSwitch);
    if (in_code) {
      if (FindWord(h, "switch") != std::string_view::npos) {
        scope.kind = Scope::Kind::kSwitch;
        scope.index = static_cast<int>(model_->switches.size());
        SwitchStmt stmt;
        const size_t sw = FindWord(h, "switch");
        const size_t open = h.find('(', sw);
        const size_t close = h.rfind(')');
        if (open != std::string_view::npos &&
            close != std::string_view::npos && close > open) {
          stmt.expr = std::string(TrimView(h.substr(open + 1, close - open - 1)));
        }
        stmt.file = file().path;
        stmt.line = ln;
        stmt.function_index = CurrentFunction();
        model_->switches.push_back(std::move(stmt));
      } else {
        scope.kind = Scope::Kind::kBlock;
      }
    } else if (FindWord(h, "namespace") != std::string_view::npos) {
      scope.kind = Scope::Kind::kNamespace;
    } else if (FindWord(h, "enum") != std::string_view::npos) {
      scope.kind = Scope::Kind::kEnum;
      scope.index = static_cast<int>(model_->enums.size());
      model_->enums.push_back(ParseEnumHeader(h, ln));
      enum_piece_.clear();
    } else if ((FindWord(h, "class") != std::string_view::npos ||
                FindWord(h, "struct") != std::string_view::npos ||
                FindWord(h, "union") != std::string_view::npos) &&
               h.find('(') == std::string_view::npos) {
      scope.kind = Scope::Kind::kClass;
      scope.name = ParseClassName(h);
    } else {
      const std::string name = ParseFunctionName(h);
      if (!name.empty()) {
        scope.kind = Scope::Kind::kFunction;
        scope.index = static_cast<int>(model_->functions.size());
        FunctionDef def;
        def.name = Qualify(name);
        def.file = file().path;
        def.file_index = file_index_;
        def.line = ln;
        model_->functions.push_back(std::move(def));
      } else {
        scope.kind = Scope::Kind::kBlock;
      }
    }
    scopes_.push_back(std::move(scope));
  }

  static EnumDef ParseEnumHeaderImpl(std::string_view h, int ln) {
    EnumDef def;
    def.line = ln;
    size_t pos = FindWord(h, "enum");
    pos += 4;
    auto next_token = [&]() -> std::string_view {
      while (pos < h.size() && !IsIdentChar(h[pos])) {
        if (h[pos] == ':') return {};  // underlying type list starts
        ++pos;
      }
      size_t end = pos;
      while (end < h.size() && IsIdentChar(h[end])) ++end;
      const std::string_view tok = h.substr(pos, end - pos);
      pos = end;
      return tok;
    };
    std::string_view tok = next_token();
    if (tok == "class" || tok == "struct") {
      def.scoped = true;
      tok = next_token();
    }
    def.name = std::string(tok);
    return def;
  }

  EnumDef ParseEnumHeader(std::string_view h, int ln) {
    EnumDef def = ParseEnumHeaderImpl(h, ln);
    def.file = file().path;
    return def;
  }

  static std::string ParseClassName(std::string_view h) {
    for (const char* kw : {"class", "struct", "union"}) {
      const size_t pos = FindWord(h, kw);
      if (pos == std::string_view::npos) continue;
      size_t p = pos + std::string_view(kw).size();
      while (p < h.size() && h[p] == ' ') ++p;
      size_t end = p;
      while (end < h.size() && IsIdentChar(h[end])) ++end;
      // `class RL_EXPORT Foo` style attribute macros don't occur here;
      // `class Foo : public Bar` and `class Foo final` both end the name at
      // the first non-identifier.
      if (end > p) return std::string(h.substr(p, end - p));
    }
    return "";
  }

  static std::string ParseFunctionName(std::string_view h) {
    const size_t open = h.find('(');
    if (open == std::string_view::npos) return "";
    size_t start = open;
    while (start > 0 &&
           (IsIdentChar(h[start - 1]) || h[start - 1] == ':' ||
            h[start - 1] == '~')) {
      --start;
    }
    std::string_view name = h.substr(start, open - start);
    while (!name.empty() && name.front() == ':') name.remove_prefix(1);
    if (name.empty()) return "";
    const std::string_view tail = UnqualifiedTail(name);
    if (tail.empty() || IsKeyword(tail)) return "";
    if (std::isdigit(static_cast<unsigned char>(tail[0])) != 0) return "";
    return std::string(name);
  }

  std::string Qualify(const std::string& name) const {
    if (name.find("::") != std::string::npos) return name;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass && !it->name.empty()) {
        return it->name + "::" + name;
      }
      if (it->kind == Scope::Kind::kFunction) break;
    }
    return name;
  }

  void FlushEnumerator(int ln) {
    std::string_view piece = TrimView(enum_piece_);
    if (!piece.empty()) {
      Enumerator e;
      size_t end = 0;
      while (end < piece.size() && IsIdentChar(piece[end])) ++end;
      e.name = std::string(piece.substr(0, end));
      e.line = enum_piece_line_ > 0 ? enum_piece_line_ : ln;
      const size_t eq = piece.find('=');
      if (eq != std::string_view::npos) {
        e.has_value = true;
        const std::string rhs(TrimView(piece.substr(eq + 1)));
        char* parse_end = nullptr;
        e.value = std::strtoll(rhs.c_str(), &parse_end, 0);
        e.value_known = parse_end != nullptr && *parse_end == '\0' &&
                        !rhs.empty();
      }
      if (!e.name.empty() && !scopes_.empty() &&
          scopes_.back().kind == Scope::Kind::kEnum) {
        model_->enums[scopes_.back().index].enumerators.push_back(
            std::move(e));
      }
    }
    enum_piece_.clear();
    enum_piece_line_ = 0;
  }

  Model* model_;
  int file_index_ = -1;
  std::vector<Scope> scopes_;
  std::string header_;
  std::string enum_piece_;
  int enum_piece_line_ = 0;
  int next_scope_id_ = 0;
};

}  // namespace

std::string_view UnqualifiedTail(std::string_view name) {
  const size_t sep = name.rfind("::");
  return sep == std::string_view::npos ? name : name.substr(sep + 2);
}

const Enumerator* EnumDef::Find(std::string_view enumerator) const {
  for (const Enumerator& e : enumerators) {
    if (e.name == enumerator) return &e;
  }
  return nullptr;
}

const EnumDef* Model::FindEnum(std::string_view name) const {
  for (const EnumDef& def : enums) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

const lintlib::SourceFile* Model::FindFile(std::string_view path) const {
  for (const lintlib::SourceFile& f : files) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

std::vector<int> Model::FunctionsNamed(std::string_view name) const {
  std::vector<int> out;
  for (size_t i = 0; i < functions.size(); ++i) {
    if (UnqualifiedTail(functions[i].name) == name) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

Model BuildModel(std::vector<lintlib::SourceFile> files) {
  Model model;
  model.files = std::move(files);
  Builder builder(&model);
  for (size_t i = 0; i < model.files.size(); ++i) {
    builder.AddFile(static_cast<int>(i));
  }
  return model;
}

}  // namespace rapicheck

// rapicheck's cross-file model of the source tree.
//
// Where simlint judges one line at a time, rapicheck's rules need structure
// that spans files: which enums exist and what their enumerators are, which
// switch statements dispatch over them and what they cover, which functions
// call which (so "durable before ack" can follow a call chain into
// WaitDurable), and where locks are acquired while other locks are held.
//
// The model is built by a brace-tracking line scanner over lintlib-stripped
// source — deliberately not a C++ parser. It understands exactly the idioms
// this repo's clang-format emits (one statement per line, `Type
// Class::Method(...) {`, `case Enum::kX:`) and nothing more. The known
// approximations are documented in DESIGN.md ("model limits"): name-based
// call resolution (all functions sharing an unqualified name are merged),
// linear in-function ordering instead of real control flow, and lock nodes
// keyed by member name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lintlib/lintlib.h"

namespace rapicheck {

struct Enumerator {
  std::string name;        // "kCommit"
  bool has_value = false;  // explicit `= N` (or any explicit initializer)
  bool value_known = false;  // initializer parsed as an integer literal
  long long value = 0;
  int line = 0;
};

struct EnumDef {
  std::string name;  // unqualified: "LogRecordType"
  std::string file;
  int line = 0;
  bool scoped = false;  // enum class
  std::vector<Enumerator> enumerators;

  const Enumerator* Find(std::string_view enumerator) const;
};

struct SwitchStmt {
  std::string enum_name;  // resolved from qualified case labels; "" if not
  std::string expr;       // raw text inside switch (...)
  std::vector<std::string> cases;  // enumerator names, in source order
  bool has_default = false;
  int default_line = 0;
  std::string file;
  int line = 0;             // line of the `switch (`
  int function_index = -1;  // enclosing function, -1 at file scope
};

// One linearized event inside a function body. Events carry the scope-id
// stack active at their line so lock liveness can respect block boundaries
// (a guard taken inside `{ ... }` is dead once the block closes).
struct FuncEvent {
  enum class Kind { kCall, kAcquire };
  Kind kind = Kind::kCall;
  std::string name;  // callee identifier, or lock node ("apply_mutex_")
  int line = 0;
  bool scoped_lock = false;  // RAII guard (dies with its scope) vs manual
  std::vector<int> scope_ids;  // innermost last; [0] is the function scope
};

struct FunctionDef {
  std::string name;  // "Database::Commit", or "Commit" if unqualifiable
  std::string file;
  int file_index = -1;
  int line = 0;      // header's opening-brace line
  int end_line = 0;  // closing-brace line
  std::vector<FuncEvent> events;  // calls + lock acquisitions, source order
};

// A qualified mention `Enum::kX` outside the enum's own definition.
struct EnumUse {
  enum class Kind {
    kCase,     // `case Enum::kX:`
    kCompare,  // `== Enum::kX` / `Enum::kX !=` ...
    kProduce,  // anything else: assignment, argument, return
  };
  std::string enum_name;   // "LogRecordType" (innermost qualifier)
  std::string enumerator;  // "kCommit"
  Kind kind = Kind::kProduce;
  std::string file;
  int line = 0;
  int function_index = -1;
};

// `inline constexpr <int-type> kName = <literal>;` at namespace scope.
struct ConstDef {
  std::string name;
  long long value = 0;
  std::string file;
  int line = 0;
};

struct Model {
  std::vector<lintlib::SourceFile> files;
  std::vector<EnumDef> enums;
  std::vector<SwitchStmt> switches;
  std::vector<FunctionDef> functions;
  std::vector<EnumUse> uses;
  std::vector<ConstDef> constants;

  const EnumDef* FindEnum(std::string_view name) const;
  const lintlib::SourceFile* FindFile(std::string_view path) const;
  // Indices of functions whose unqualified tail name equals `name`.
  std::vector<int> FunctionsNamed(std::string_view name) const;
};

// Builds the model from stripped sources. Files should be stripped with the
// "rapicheck:" pragma marker so rule suppressions resolve.
Model BuildModel(std::vector<lintlib::SourceFile> files);

// Unqualified tail of "A::B::C" -> "C".
std::string_view UnqualifiedTail(std::string_view name);

}  // namespace rapicheck

// rapicheck CLI.
//
//   rapicheck [options] PATH...
//
//   PATH                directory (recursive *.h/*.cc walk, sorted) or file
//   --baseline FILE     subtract FILE's suppressions; fail only on new hits
//   --write-baseline F  serialize current findings to F and exit 0
//   --json              machine-readable output
//   --github            GitHub Actions ::error annotations
//   --list-rules        print the rule table and exit
//
// Unlike simlint, rapicheck is a whole-tree analysis: all PATHs are read,
// one cross-file model is built, and the rules run over that model.
//
// Exit status: 0 clean (after baseline), 1 findings, 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/lintlib/lintlib.h"
#include "tools/rapicheck/rapicheck.h"

using lintlib::CollectFiles;
using lintlib::ReadFile;

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string write_baseline_path;
  bool json = false;
  bool github = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rapicheck: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--write-baseline") {
      write_baseline_path = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--list-rules") {
      for (const lintlib::RuleInfo& r : rapicheck::Rules()) {
        std::printf("%s %-26s %-7s %s\n", r.id, r.name, r.severity,
                    r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rapicheck [--json] [--github] [--baseline FILE]\n"
          "                 [--write-baseline FILE] [--list-rules] "
          "PATH...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rapicheck: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "rapicheck: no paths given (try: rapicheck src)\n");
    return 2;
  }

  std::string error;
  const std::vector<std::string> files = CollectFiles(paths, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "rapicheck: %s\n", error.c_str());
    return 2;
  }

  std::vector<lintlib::SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    std::string contents;
    if (!ReadFile(file, &contents)) {
      std::fprintf(stderr, "rapicheck: cannot read %s\n", file.c_str());
      return 2;
    }
    sources.push_back(lintlib::StripSource(file, contents, "rapicheck:"));
  }
  const rapicheck::Model model =
      rapicheck::BuildModel(std::move(sources));
  std::vector<lintlib::Finding> findings =
      rapicheck::Analyze(model, rapicheck::DefaultConfig());

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rapicheck: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << lintlib::SerializeBaseline(findings, "rapicheck");
    std::printf("rapicheck: wrote %zu finding(s) to %s\n", findings.size(),
                write_baseline_path.c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFile(baseline_path, &text)) {
      std::fprintf(stderr, "rapicheck: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<lintlib::BaselineEntry> entries;
    if (!lintlib::ParseBaseline(text, &entries, &error)) {
      std::fprintf(stderr, "rapicheck: %s\n", error.c_str());
      return 2;
    }
    findings = lintlib::ApplyBaseline(std::move(findings), entries);
  }

  if (json) {
    std::fputs(lintlib::FormatJson(findings).c_str(), stdout);
  } else if (github) {
    std::fputs(lintlib::FormatGithub(findings, "rapicheck").c_str(),
               stdout);
  } else {
    std::fputs(lintlib::FormatText(findings).c_str(), stdout);
    std::printf("rapicheck: %zu file(s), %zu finding(s)%s\n", files.size(),
                findings.size(),
                baseline_path.empty() ? "" : " not in baseline");
  }
  return findings.empty() ? 0 : 1;
}

#include "tools/rapicheck/rapicheck.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

namespace rapicheck {

namespace {

using lintlib::ContainsDir;
using lintlib::Finding;
using lintlib::FindWord;
using lintlib::IsIdentChar;
using lintlib::SourceFile;

std::string_view TagFor(std::string_view rule) {
  if (rule == "RC101") return "case-ok";
  if (rule == "RC102" || rule == "RC103") return "enum-ok";
  if (rule == "RC104") return "const-ok";
  if (rule == "RC201" || rule == "RC203") return "handler-ok";
  if (rule == "RC202") return "default-ok";
  if (rule == "RC301" || rule == "RC302") return "ack-ok";
  return "lock-ok";
}

std::string_view SeverityFor(std::string_view rule) {
  for (const lintlib::RuleInfo& info : Rules()) {
    if (rule == info.id) return info.severity;
  }
  return "error";
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

// Collects findings; drops pragma-suppressed ones and stamps the baseline
// CRC from the stripped source line.
class Emitter {
 public:
  explicit Emitter(const Model& model) : model_(model) {}

  void Add(std::string rule, const std::string& file, int line,
           std::string message, std::string hint) {
    const SourceFile* sf = model_.FindFile(file);
    if (sf != nullptr &&
        lintlib::PragmaSuppressed(*sf, line, TagFor(rule))) {
      return;
    }
    Finding f;
    f.severity = std::string(SeverityFor(rule));
    f.rule = std::move(rule);
    f.file = file;
    f.line = line;
    f.message = std::move(message);
    f.hint = std::move(hint);
    if (sf != nullptr && line >= 1 &&
        line <= static_cast<int>(sf->code.size())) {
      f.crc = lintlib::NormalizedCrc(sf->code[line - 1], &f.normalized);
    }
    findings_.push_back(std::move(f));
  }

  std::vector<Finding> Take() { return std::move(findings_); }

 private:
  const Model& model_;
  std::vector<Finding> findings_;
};

// "src/shard" matches any path containing that directory run; an entry with
// a '.' ("src/shard/shard_node.cc") matches as a path suffix, so fixture
// trees like tests/rapicheck_fixtures/x/src/shard/shard_node.cc qualify.
bool ScopeMatch(std::string_view path, std::string_view entry) {
  if (entry.find('.') != std::string_view::npos) {
    if (path == entry) return true;
    return path.size() > entry.size() &&
           path.compare(path.size() - entry.size(), std::string_view::npos,
                        entry) == 0 &&
           path[path.size() - entry.size() - 1] == '/';
  }
  return ContainsDir(path, entry);
}

bool InAnyScope(std::string_view path,
                const std::vector<std::string>& entries) {
  for (const std::string& e : entries) {
    if (ScopeMatch(path, e)) return true;
  }
  return false;
}

// --- RC101: no-default switch over a known enum missing enumerators --------

void CheckSwitchCoverage(const Model& m, Emitter* e) {
  for (const SwitchStmt& sw : m.switches) {
    if (sw.enum_name.empty() || sw.has_default) continue;
    const EnumDef* def = m.FindEnum(sw.enum_name);
    if (def == nullptr) continue;
    std::vector<std::string> missing;
    for (const Enumerator& en : def->enumerators) {
      if (std::find(sw.cases.begin(), sw.cases.end(), en.name) ==
          sw.cases.end()) {
        missing.push_back(en.name);
      }
    }
    if (missing.empty()) continue;
    e->Add("RC101", sw.file, sw.line,
           "switch over '" + sw.enum_name +
               "' has no default and covers only " +
               std::to_string(sw.cases.size()) + " of " +
               std::to_string(def->enumerators.size()) +
               " enumerators; missing: " + Join(missing, ", "),
           "add the missing case labels, or a deliberate default with a "
           "'// rapicheck: case-ok (why)' justification");
  }
}

// --- RC102: record/wire kind never produced or never consumed --------------

void CheckKindPairing(const Model& m, const Config& cfg, Emitter* e) {
  for (const EnumContract& c : cfg.enums) {
    if (!c.pair_producers) continue;
    const EnumDef* def = m.FindEnum(c.enum_name);
    if (def == nullptr) continue;
    for (const Enumerator& en : def->enumerators) {
      bool produced = false;
      bool consumed = false;
      for (const EnumUse& u : m.uses) {
        if (u.enum_name != c.enum_name || u.enumerator != en.name) continue;
        if (u.kind == EnumUse::Kind::kProduce) {
          produced = true;
        } else {
          consumed = true;
        }
      }
      if (!produced) {
        e->Add("RC102", def->file, en.line,
               "record kind '" + c.enum_name + "::" + en.name +
                   "' is defined but never constructed anywhere in the "
                   "tree",
               "produce it on some path, or delete the kind; a reserved "
               "value can carry '// rapicheck: enum-ok (reserved)'");
      }
      if (!consumed) {
        e->Add("RC102", def->file, en.line,
               "record kind '" + c.enum_name + "::" + en.name +
                   "' is never consumed: no case label or comparison "
                   "reads it, so instances are silently ignored",
               "handle it in the dispatch switch, or delete the kind");
      }
    }
  }
}

// --- RC103: on-disk enums need explicit, unique values ---------------------

void CheckOnDiskEnumValues(const Model& m, const Config& cfg, Emitter* e) {
  for (const EnumContract& c : cfg.enums) {
    if (!c.on_disk) continue;
    const EnumDef* def = m.FindEnum(c.enum_name);
    if (def == nullptr) continue;
    std::map<long long, const Enumerator*> by_value;
    for (const Enumerator& en : def->enumerators) {
      if (!en.has_value) {
        e->Add("RC103", def->file, en.line,
               "on-disk enumerator '" + c.enum_name + "::" + en.name +
                   "' has no explicit value; inserting or reordering "
                   "kinds would silently renumber the persistent format",
               "pin every enumerator of an on-disk enum to an explicit "
               "integer value");
        continue;
      }
      if (!en.value_known) continue;
      auto [it, inserted] = by_value.emplace(en.value, &en);
      if (!inserted) {
        e->Add("RC103", def->file, en.line,
               "on-disk enumerator '" + c.enum_name + "::" + en.name +
                   "' duplicates value " + std::to_string(en.value) +
                   " of '" + it->second->name + "'",
               "on-disk enumerator values must be unique");
      }
    }
  }
}

// --- RC104: literal duplicating a named on-disk constant -------------------

void CheckConstantDrift(const Model& m, const Config& cfg, Emitter* e) {
  for (const std::string& name : cfg.on_disk_constants) {
    const ConstDef* def = nullptr;
    for (const ConstDef& cd : m.constants) {
      if (cd.name == name) {
        def = &cd;
        break;
      }
    }
    if (def == nullptr) continue;
    for (const SourceFile& sf : m.files) {
      bool references = false;
      for (const std::string& ln : sf.code) {
        if (FindWord(ln, name) != std::string::npos) {
          references = true;
          break;
        }
      }
      if (!references) continue;
      for (size_t i = 0; i < sf.code.size(); ++i) {
        const std::string& ln = sf.code[i];
        if (FindWord(ln, name) != std::string::npos) continue;
        // Scan for a standalone integer literal equal to the constant.
        for (size_t pos = 0; pos < ln.size(); ++pos) {
          if (ln[pos] < '0' || ln[pos] > '9') continue;
          if (pos > 0 && (IsIdentChar(ln[pos - 1]) || ln[pos - 1] == '.')) {
            while (pos + 1 < ln.size() && IsIdentChar(ln[pos + 1])) ++pos;
            continue;
          }
          char* end = nullptr;
          long long v = std::strtoll(ln.c_str() + pos, &end, 0);
          size_t len = static_cast<size_t>(end - (ln.c_str() + pos));
          if (len == 0) continue;
          size_t after = pos + len;
          if (after < ln.size() &&
              (IsIdentChar(ln[after]) || ln[after] == '.')) {
            pos = after;
            continue;
          }
          if (v == def->value) {
            e->Add("RC104", sf.path, static_cast<int>(i) + 1,
                   "integer literal " + std::to_string(def->value) +
                       " duplicates on-disk constant '" + name +
                       "' (defined at " + def->file + ":" +
                       std::to_string(def->line) +
                       ") in a file that also uses the symbol",
                   "spell it '" + name +
                       "' so a format change cannot half-apply");
            break;  // one finding per line
          }
          pos = after;
        }
      }
    }
  }
}

// --- RC201: every wire kind has a handler case in the registered files -----

void CheckHandlerCoverage(const Model& m, const Config& cfg, Emitter* e) {
  for (const EnumContract& c : cfg.enums) {
    if (c.handler_paths.empty()) continue;
    const EnumDef* def = m.FindEnum(c.enum_name);
    if (def == nullptr) continue;
    for (const Enumerator& en : def->enumerators) {
      bool handled = false;
      for (const EnumUse& u : m.uses) {
        if (u.kind == EnumUse::Kind::kCase && u.enum_name == c.enum_name &&
            u.enumerator == en.name &&
            InAnyScope(u.file, c.handler_paths)) {
          handled = true;
          break;
        }
      }
      if (handled) continue;
      e->Add("RC201", def->file, en.line,
             "message kind '" + c.enum_name + "::" + en.name +
                 "' has no handler: no case label in " +
                 Join(c.handler_paths, ", "),
             "add a case in the handler switch; today this kind falls "
             "into a default or is dropped on arrival");
    }
  }
}

// --- RC202: default: in a protocol-enum switch swallows messages -----------

void CheckSilentDefault(const Model& m, const Config& cfg, Emitter* e) {
  for (const EnumContract& c : cfg.enums) {
    if (!c.protocol) continue;
    for (const SwitchStmt& sw : m.switches) {
      if (sw.enum_name != c.enum_name || !sw.has_default) continue;
      e->Add("RC202", sw.file, sw.default_line,
             "'default:' in a switch over protocol enum '" + c.enum_name +
                 "' silently drops message kinds: a new kind added to the "
                 "wire enum is ignored here instead of failing closed",
             "enumerate every kind explicitly (count unexpected ones), or "
             "annotate '// rapicheck: default-ok (why)'");
    }
  }
}

// --- RC203: a request handler must be able to produce the paired reply -----

constexpr int kCallGraphDepth = 3;

bool ProducesEnumerator(const Model& m, int fn, std::string_view enum_name,
                        std::string_view enumerator) {
  for (const EnumUse& u : m.uses) {
    if (u.function_index == fn && u.kind == EnumUse::Kind::kProduce &&
        u.enum_name == enum_name && u.enumerator == enumerator) {
      return true;
    }
  }
  return false;
}

bool ReachesProducer(const Model& m, int start, std::string_view enum_name,
                     std::string_view enumerator) {
  std::set<int> visited;
  std::vector<int> frontier = {start};
  for (int depth = 0; depth <= kCallGraphDepth && !frontier.empty();
       ++depth) {
    std::vector<int> next;
    for (int fn : frontier) {
      if (!visited.insert(fn).second) continue;
      if (ProducesEnumerator(m, fn, enum_name, enumerator)) return true;
      for (const FuncEvent& ev : m.functions[fn].events) {
        if (ev.kind != FuncEvent::Kind::kCall) continue;
        for (int gi : m.FunctionsNamed(ev.name)) next.push_back(gi);
      }
    }
    frontier = std::move(next);
  }
  return false;
}

void CheckReplyReachability(const Model& m, const Config& cfg, Emitter* e) {
  for (const ReplyContract& rc : cfg.replies) {
    const EnumContract* contract = nullptr;
    for (const EnumContract& c : cfg.enums) {
      if (c.enum_name == rc.enum_name) contract = &c;
    }
    const EnumUse* first_site = nullptr;
    bool reachable = false;
    for (const EnumUse& u : m.uses) {
      if (u.kind != EnumUse::Kind::kCase || u.enum_name != rc.enum_name ||
          u.enumerator != rc.request || u.function_index < 0) {
        continue;
      }
      if (contract != nullptr && !contract->handler_paths.empty() &&
          !InAnyScope(u.file, contract->handler_paths)) {
        continue;
      }
      if (first_site == nullptr) first_site = &u;
      if (ReachesProducer(m, u.function_index, rc.enum_name, rc.reply)) {
        reachable = true;
        break;
      }
    }
    if (first_site == nullptr || reachable) continue;  // RC201 covers absent
    e->Add("RC203", first_site->file, first_site->line,
           "handler for '" + rc.enum_name + "::" + rc.request +
               "' can never produce the paired reply '" + rc.enum_name +
               "::" + rc.reply + "' (call graph searched to depth " +
               std::to_string(kCallGraphDepth) + ")",
           "send the reply on every handled path, or annotate "
           "'// rapicheck: handler-ok (why)'");
  }
}

// --- RC3xx: durability ordering --------------------------------------------

// Functions that reach a durability point: the base names themselves
// (WaitDurable, ...) plus, transitively, any function whose body calls a
// durable function.
std::vector<char> DurabilityClosure(const Model& m, const Config& cfg) {
  std::set<std::string> base(cfg.durability_calls.begin(),
                             cfg.durability_calls.end());
  std::vector<char> durable(m.functions.size(), 0);
  auto call_is_durable = [&](const FuncEvent& ev) {
    if (ev.kind != FuncEvent::Kind::kCall) return false;
    if (base.count(ev.name) != 0) return true;
    for (int gi : m.FunctionsNamed(ev.name)) {
      if (durable[gi] != 0) return true;
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < m.functions.size(); ++i) {
      if (durable[i] != 0) continue;
      for (const FuncEvent& ev : m.functions[i].events) {
        if (call_is_durable(ev)) {
          durable[i] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  return durable;
}

bool DurableCallAt(const Model& m, const Config& cfg,
                   const std::vector<char>& durable, const FuncEvent& ev) {
  if (ev.kind != FuncEvent::Kind::kCall) return false;
  for (const std::string& b : cfg.durability_calls) {
    if (ev.name == b) return true;
  }
  for (int gi : m.FunctionsNamed(ev.name)) {
    if (durable[gi] != 0) return true;
  }
  return false;
}

void CheckAckBeforeDurability(const Model& m, const Config& cfg,
                              const std::vector<char>& durable,
                              Emitter* e) {
  struct AckSite {
    int fn;
    int line;
    std::string what;
  };
  std::vector<AckSite> sites;
  for (size_t fi = 0; fi < m.functions.size(); ++fi) {
    const FunctionDef& f = m.functions[fi];
    const SourceFile* sf = m.FindFile(f.file);
    if (sf == nullptr) continue;
    for (int ln = f.line; ln <= f.end_line &&
                          ln <= static_cast<int>(sf->code.size());
         ++ln) {
      const std::string& code = sf->code[ln - 1];
      for (const std::string& marker : cfg.ack_line_markers) {
        if (code.find(marker) != std::string::npos) {
          sites.push_back({static_cast<int>(fi), ln, marker});
          break;
        }
      }
    }
  }
  for (const EnumUse& u : m.uses) {
    if (u.kind != EnumUse::Kind::kProduce || u.function_index < 0) continue;
    for (const EnumRef& ref : cfg.ack_producers) {
      if (u.enum_name == ref.enum_name && u.enumerator == ref.enumerator) {
        sites.push_back({u.function_index, u.line,
                         ref.enum_name + "::" + ref.enumerator});
      }
    }
  }
  for (const AckSite& site : sites) {
    const FunctionDef& f = m.functions[site.fn];
    bool durable_before = false;
    for (const FuncEvent& ev : f.events) {
      if (ev.line > site.line) break;
      if (DurableCallAt(m, cfg, durable, ev)) {
        durable_before = true;
        break;
      }
    }
    if (durable_before) continue;
    e->Add("RC301", f.file, site.line,
           "commit acknowledged ('" + site.what +
               "') with no durability point before it in '" + f.name +
               "': no direct or transitive " +
               Join(cfg.durability_calls, "/") +
               " call precedes this line",
           "await durability before acknowledging, or annotate "
           "'// rapicheck: ack-ok (why this path needs no flush)'");
  }
}

void CheckCommitRecordAwaited(const Model& m, const Config& cfg,
                              const std::vector<char>& durable,
                              Emitter* e) {
  if (cfg.commit_record_enum.empty()) return;
  for (size_t fi = 0; fi < m.functions.size(); ++fi) {
    const FunctionDef& f = m.functions[fi];
    int first_produce = 0;
    std::string kind;
    for (const EnumUse& u : m.uses) {
      if (u.function_index != static_cast<int>(fi) ||
          u.kind != EnumUse::Kind::kProduce ||
          u.enum_name != cfg.commit_record_enum) {
        continue;
      }
      if (std::find(cfg.commit_record_kinds.begin(),
                    cfg.commit_record_kinds.end(),
                    u.enumerator) == cfg.commit_record_kinds.end()) {
        continue;
      }
      if (first_produce == 0 || u.line < first_produce) {
        first_produce = u.line;
        kind = u.enumerator;
      }
    }
    if (first_produce == 0) continue;
    int last_append = 0;
    for (const FuncEvent& ev : f.events) {
      if (ev.kind != FuncEvent::Kind::kCall || ev.line < first_produce) {
        continue;
      }
      if (std::find(cfg.append_calls.begin(), cfg.append_calls.end(),
                    ev.name) != cfg.append_calls.end()) {
        last_append = std::max(last_append, ev.line);
      }
    }
    if (last_append == 0) continue;  // record built here, appended elsewhere
    bool awaited = false;
    for (const FuncEvent& ev : f.events) {
      if (ev.line <= last_append) continue;
      if (DurableCallAt(m, cfg, durable, ev)) {
        awaited = true;
        break;
      }
    }
    if (awaited) continue;
    e->Add("RC302", f.file, last_append,
           "a '" + cfg.commit_record_enum + "::" + kind +
               "' record is appended here but never awaited durable in '" +
               f.name + "'",
           "follow the append with " + Join(cfg.durability_calls, "/") +
           " before the outcome can be observed, or annotate "
           "'// rapicheck: ack-ok (why)'");
  }
}

// --- RC401: lock-order cycles ----------------------------------------------

struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string via;  // "Database::Checkpoint" or "...Commit -> Acquire"
};

// Lock nodes a call to `name` may acquire, found by expanding every
// function with that unqualified name to kCallGraphDepth.
void CollectCalleeAcquisitions(const Model& m, int fn, int depth,
                               std::set<int>* visited,
                               std::set<std::string>* out) {
  if (!visited->insert(fn).second) return;
  for (const FuncEvent& ev : m.functions[fn].events) {
    if (ev.kind == FuncEvent::Kind::kAcquire) {
      out->insert(ev.name);
    } else if (depth > 0) {
      for (int gi : m.FunctionsNamed(ev.name)) {
        CollectCalleeAcquisitions(m, gi, depth - 1, visited, out);
      }
    }
  }
}

// Tarjan strongly-connected components over the lock graph.
class SccFinder {
 public:
  SccFinder(const std::vector<std::string>& nodes,
            const std::map<std::pair<std::string, std::string>, LockEdge>&
                edges) {
    for (size_t i = 0; i < nodes.size(); ++i) index_of_[nodes[i]] = i;
    adj_.resize(nodes.size());
    for (const auto& [key, edge] : edges) {
      adj_[index_of_[key.first]].push_back(index_of_[key.second]);
    }
    state_.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (state_[i].index < 0) Strongconnect(i);
    }
  }

  // component id per node index; components with >= 2 members are cycles.
  const std::vector<int>& Component() const { return component_; }

 private:
  struct State {
    int index = -1;
    int lowlink = 0;
    bool on_stack = false;
  };

  void Strongconnect(size_t v) {
    state_[v].index = state_[v].lowlink = next_index_++;
    state_[v].on_stack = true;
    stack_.push_back(v);
    for (size_t w : adj_[v]) {
      if (state_[w].index < 0) {
        Strongconnect(w);
        state_[v].lowlink = std::min(state_[v].lowlink, state_[w].lowlink);
      } else if (state_[w].on_stack) {
        state_[v].lowlink = std::min(state_[v].lowlink, state_[w].index);
      }
    }
    if (state_[v].lowlink == state_[v].index) {
      if (component_.size() < state_.size()) {
        component_.resize(state_.size(), -1);
      }
      while (true) {
        size_t w = stack_.back();
        stack_.pop_back();
        state_[w].on_stack = false;
        component_[w] = next_component_;
        if (w == v) break;
      }
      ++next_component_;
    }
  }

  std::map<std::string, size_t> index_of_;
  std::vector<std::vector<size_t>> adj_;
  std::vector<State> state_;
  std::vector<size_t> stack_;
  std::vector<int> component_;
  int next_index_ = 0;
  int next_component_ = 0;
};

void CheckLockOrder(const Model& m, Emitter* e) {
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  std::map<std::string, std::set<std::string>> callee_acq_memo;
  auto callee_acquisitions =
      [&](const std::string& name) -> const std::set<std::string>& {
    auto it = callee_acq_memo.find(name);
    if (it != callee_acq_memo.end()) return it->second;
    std::set<std::string> acq;
    std::set<int> visited;
    for (int gi : m.FunctionsNamed(name)) {
      CollectCalleeAcquisitions(m, gi, kCallGraphDepth - 1, &visited, &acq);
    }
    return callee_acq_memo.emplace(name, std::move(acq)).first->second;
  };
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& via) {
    if (from == to) return;  // per-key managers re-enter by design
    edges.emplace(std::make_pair(from, to),
                  LockEdge{from, to, file, line, via});
  };

  for (const FunctionDef& f : m.functions) {
    struct Held {
      std::string node;
      int scope_top;  // RAII guard's scope id; -1 = held to function end
    };
    std::vector<Held> held;
    for (const FuncEvent& ev : f.events) {
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const Held& h) {
                                  if (h.scope_top < 0) return false;
                                  return std::find(ev.scope_ids.begin(),
                                                   ev.scope_ids.end(),
                                                   h.scope_top) ==
                                         ev.scope_ids.end();
                                }),
                 held.end());
      if (ev.kind == FuncEvent::Kind::kAcquire) {
        for (const Held& h : held) {
          add_edge(h.node, ev.name, f.file, ev.line, f.name);
        }
        int scope_top = -1;
        if (ev.scoped_lock && !ev.scope_ids.empty()) {
          scope_top = ev.scope_ids.back();
        }
        held.push_back({ev.name, scope_top});
      } else if (!held.empty()) {
        for (const std::string& node : callee_acquisitions(ev.name)) {
          for (const Held& h : held) {
            add_edge(h.node, node, f.file, ev.line,
                     f.name + " -> " + ev.name);
          }
        }
      }
    }
  }

  std::set<std::string> node_set;
  for (const auto& [key, edge] : edges) {
    node_set.insert(key.first);
    node_set.insert(key.second);
  }
  std::vector<std::string> nodes(node_set.begin(), node_set.end());
  if (nodes.empty()) return;
  SccFinder scc(nodes, edges);
  std::map<std::string, int> comp_of;
  for (size_t i = 0; i < nodes.size(); ++i) {
    comp_of[nodes[i]] = scc.Component()[i];
  }
  std::map<int, std::vector<const LockEdge*>> cycle_edges;
  for (const auto& [key, edge] : edges) {
    if (comp_of[key.first] == comp_of[key.second]) {
      cycle_edges[comp_of[key.first]].push_back(&edge);
    }
  }
  for (const auto& [comp, members] : cycle_edges) {
    if (members.size() < 2) continue;  // no self-edges, so >=2 means cycle
    const LockEdge* anchor = members.front();
    for (const LockEdge* edge : members) {
      if (std::make_pair(edge->file, edge->line) <
          std::make_pair(anchor->file, anchor->line)) {
        anchor = edge;
      }
    }
    std::vector<std::string> parts;
    for (const LockEdge* edge : members) {
      parts.push_back(edge->from + " -> " + edge->to + " (" + edge->file +
                      ":" + std::to_string(edge->line) + " in " +
                      edge->via + ")");
    }
    e->Add("RC401", anchor->file, anchor->line,
           "lock-order cycle: " + Join(parts, "; "),
           "impose a single acquisition order for these locks, or "
           "annotate the intentional edge with "
           "'// rapicheck: lock-ok (why)'");
  }
}

}  // namespace

Config DefaultConfig() {
  Config c;
  c.enums.push_back(
      {"LogRecordType", true, true, false, {"src/db/database.cc"}});
  c.enums.push_back({"MsgType",
                     true,
                     true,
                     true,
                     {"src/shard/shard_node.cc",
                      "src/shard/txn_coordinator.cc"}});
  c.enums.push_back(
      {"QueryAnswer", true, true, true, {"src/shard/shard_node.cc"}});
  c.enums.push_back({"PageType", true, false, false, {}});
  c.replies = {{"MsgType", "kPrepareReq", "kVote"},
               {"MsgType", "kExecuteReq", "kExecuteResp"},
               {"MsgType", "kDecision", "kDecisionAck"},
               {"MsgType", "kQuery", "kQueryResp"}};
  c.durability_calls = {"WaitDurable", "Force", "Flush", "Quiesce"};
  c.ack_line_markers = {"stats_.commits.Add", "stats_.prepares.Add"};
  c.ack_producers = {{"TxnOutcome", "kCommitted"}};
  c.commit_record_enum = "LogRecordType";
  c.commit_record_kinds = {"kCommit", "kPrepare"};
  c.append_calls = {"Append"};
  c.on_disk_constants = {"kRedoSlices"};
  return c;
}

const std::vector<lintlib::RuleInfo>& Rules() {
  static const std::vector<lintlib::RuleInfo> rules = {
      {"RC101", "switch-missing-case", "error",
       "no-default switch over a known enum missing enumerators"},
      {"RC102", "record-kind-unpaired", "error",
       "record/wire kind never produced or never consumed"},
      {"RC103", "on-disk-enum-values", "error",
       "on-disk enum without explicit unique enumerator values"},
      {"RC104", "on-disk-constant-drift", "warning",
       "integer literal duplicating a named on-disk constant"},
      {"RC201", "handler-coverage", "error",
       "wire message kind with no handler case in the registered files"},
      {"RC202", "silent-default-drop", "error",
       "default: in a protocol-enum switch silently drops message kinds"},
      {"RC203", "reply-unreachable", "error",
       "request handler that can never produce the paired reply"},
      {"RC301", "ack-before-durability", "error",
       "commit acknowledgement with no durability point before it"},
      {"RC302", "commit-record-not-awaited", "error",
       "commit/prepare record appended but never awaited durable"},
      {"RC401", "lock-order-cycle", "error",
       "cycle in the lock acquisition order graph"},
  };
  return rules;
}

std::vector<Finding> Analyze(const Model& model, const Config& config) {
  Emitter e(model);
  CheckSwitchCoverage(model, &e);
  CheckKindPairing(model, config, &e);
  CheckOnDiskEnumValues(model, config, &e);
  CheckConstantDrift(model, config, &e);
  CheckHandlerCoverage(model, config, &e);
  CheckSilentDefault(model, config, &e);
  CheckReplyReachability(model, config, &e);
  std::vector<char> durable = DurabilityClosure(model, config);
  CheckAckBeforeDurability(model, config, durable, &e);
  CheckCommitRecordAwaited(model, config, durable, &e);
  CheckLockOrder(model, &e);
  std::vector<Finding> findings = e.Take();
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<Finding> AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& path_contents,
    const Config& config) {
  std::vector<lintlib::SourceFile> files;
  files.reserve(path_contents.size());
  for (const auto& [path, contents] : path_contents) {
    files.push_back(lintlib::StripSource(path, contents, "rapicheck:"));
  }
  return Analyze(BuildModel(std::move(files)), config);
}

}  // namespace rapicheck

// rapicheck: a cross-file semantic invariant checker for this repository.
//
// simlint enforces *determinism* one line at a time; rapicheck enforces the
// repo's *protocol contracts*, which no single line can witness: every WAL
// record kind must have a redo handler, every 2PC wire message a handler on
// some endpoint, every commit acknowledgement a durability point upstream of
// it, and the lock acquisition graph must stay acyclic. It builds a
// lightweight whole-tree model (tools/rapicheck/model.h) and checks four
// rule families over it:
//
//   RC1xx — WAL / on-disk exhaustiveness
//     RC101 switch-missing-case       no-default switch over a known enum
//                                     missing enumerators
//     RC102 record-kind-unpaired      a record/wire kind never produced, or
//                                     never consumed (case/comparison)
//     RC103 on-disk-enum-values       on-disk enum without explicit, unique
//                                     enumerator values (format drift)
//     RC104 on-disk-constant-drift    integer literal duplicating an
//                                     on-disk constant in a file that also
//                                     uses the symbol
//   RC2xx — protocol state-machine coverage
//     RC201 handler-coverage          wire message kind with no handler
//                                     case in the registered handler files
//     RC202 silent-default-drop       `default:` in a switch over a
//                                     protocol enum swallows messages
//     RC203 reply-unreachable         request handler that can never send
//                                     the paired reply kind (call-graph BFS)
//   RC3xx — trust-boundary ordering
//     RC301 ack-before-durability     commit-ack marker with no durability
//                                     call (WaitDurable/Force/..., directly
//                                     or transitively) before it
//     RC302 commit-record-not-awaited kCommit/kPrepare record appended but
//                                     no durability call after the append
//   RC4xx — lock-order cycles
//     RC401 lock-order-cycle          cycle in the lock acquisition graph
//                                     (RAII scopes + one-level call
//                                     expansion)
//
// Suppression: `// rapicheck: <tag>` on the finding's line or the comment
// block above it — tags: case-ok, enum-ok, const-ok, handler-ok,
// default-ok, ack-ok, lock-ok. Baselines and output formats are lintlib's,
// shared with simlint.
#pragma once

#include <string>
#include <vector>

#include "tools/lintlib/lintlib.h"
#include "tools/rapicheck/model.h"

namespace rapicheck {

// What the rules check is repo policy, not code structure, so it is data:
// which enums are on-disk formats, which are wire protocols, where their
// handlers are allowed to live, what counts as a durability point and what
// counts as acknowledging a commit. DefaultConfig() encodes this repo's
// contracts; tests inject small configs against fixture trees.
struct EnumContract {
  std::string enum_name;
  bool on_disk = false;         // RC103: explicit unique values required
  bool pair_producers = false;  // RC102: every kind produced and consumed
  bool protocol = false;        // RC202: no silent default switch
  // RC201: every enumerator must appear as a case label in at least one of
  // these scopes (directory like "src/db", or file suffix like
  // "src/shard/shard_node.cc"). Empty: rule not applied.
  std::vector<std::string> handler_paths;
};

struct ReplyContract {
  std::string enum_name;
  std::string request;  // enumerator
  std::string reply;    // enumerator a handler of `request` must produce
};

struct EnumRef {
  std::string enum_name;
  std::string enumerator;
};

struct Config {
  std::vector<EnumContract> enums;
  std::vector<ReplyContract> replies;
  // Base durability points; the closure (functions reaching these through
  // calls) is computed over the model.
  std::vector<std::string> durability_calls;
  // RC301 ack markers: raw substrings matched against stripped code lines
  // inside function bodies (e.g. "stats_.commits.Add"), plus enum
  // producers (e.g. TxnOutcome::kCommitted assignments).
  std::vector<std::string> ack_line_markers;
  std::vector<EnumRef> ack_producers;
  // RC302: appending a record of one of these kinds must be followed by a
  // durability call in the same function.
  std::string commit_record_enum;
  std::vector<std::string> commit_record_kinds;
  std::vector<std::string> append_calls;
  // RC104: on-disk constants whose value must not be open-coded.
  std::vector<std::string> on_disk_constants;
};

Config DefaultConfig();

// The full rule table, in id order.
const std::vector<lintlib::RuleInfo>& Rules();

// Runs every rule over the model. Findings are pragma-filtered and sorted
// by (file, line, rule).
std::vector<lintlib::Finding> Analyze(const Model& model,
                                      const Config& config);

// Convenience for tests: strip (with the rapicheck pragma marker), build
// the model, analyze.
std::vector<lintlib::Finding> AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& path_contents,
    const Config& config);

}  // namespace rapicheck

// benchdiff CLI: compares a fresh BENCH_*.json against its committed
// baseline (see tools/benchdiff/benchdiff.h for the rule list).
//
//   benchdiff [--tolerance X | --tolerance NAME=X]... [--format F] BASE FRESH
//
// --tolerance X        default relative band (0.35 unless given)
// --tolerance NAME=X   per-metric override (repeatable)
// --format text|json|github   output style (default text)
//
// Exit status: 0 = within bands (warnings allowed), 1 = BD001 errors,
// 2 = usage or unreadable/unparseable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/benchdiff/benchdiff.h"
#include "tools/lintlib/lintlib.h"

namespace {

bool LoadMetrics(const char* path, std::vector<benchdiff::Metric>* out) {
  std::string text;
  if (!lintlib::ReadFile(path, &text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", path);
    return false;
  }
  std::string error;
  if (!benchdiff::ParseBenchJson(text, out, &error)) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchdiff::DiffOptions opts;
  std::string format = "text";
  const char* base_path = nullptr;
  const char* fresh_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      const std::string v = argv[++i];
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        opts.default_tolerance = std::strtod(v.c_str(), nullptr);
      } else {
        opts.overrides[v.substr(0, eq)] =
            std::strtod(v.c_str() + eq + 1, nullptr);
      }
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "json" && format != "github") {
        std::fprintf(stderr, "benchdiff: --format wants text|json|github\n");
        return 2;
      }
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (fresh_path == nullptr) {
      fresh_path = argv[i];
    } else {
      std::fprintf(stderr, "benchdiff: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (base_path == nullptr || fresh_path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--tolerance X | --tolerance NAME=X]... "
                 "[--format text|json|github] BASELINE FRESH\n",
                 argv[0]);
    return 2;
  }

  std::vector<benchdiff::Metric> baseline;
  std::vector<benchdiff::Metric> fresh;
  if (!LoadMetrics(base_path, &baseline) || !LoadMetrics(fresh_path, &fresh)) {
    return 2;
  }

  const std::vector<lintlib::Finding> findings =
      benchdiff::DiffBench(baseline, fresh, opts, fresh_path);
  if (format == "json") {
    std::fputs(lintlib::FormatJson(findings).c_str(), stdout);
  } else if (format == "github") {
    std::fputs(lintlib::FormatGithub(findings, "benchdiff").c_str(), stdout);
  } else {
    std::fputs(lintlib::FormatText(findings).c_str(), stdout);
    std::printf("benchdiff: %zu baseline metrics vs %s: %zu findings\n",
                baseline.size(), fresh_path, findings.size());
  }
  return benchdiff::HasErrors(findings) ? 1 : 0;
}

// benchdiff: regression gate for the BENCH_*.json files the benches emit.
//
// The committed baselines (BENCH_perf.json, BENCH_e13.json, BENCH_e14.json
// at the repo root) pin what the benches reported when their code last
// changed on purpose. benchdiff compares a freshly generated file against
// its baseline metric by metric, with a relative tolerance band per metric:
//
//   BD001 out-of-band   error    metric moved outside its tolerance band
//                                (or its unit changed)
//   BD002 missing       warning  baseline metric absent from the fresh run
//   BD003 new           warning  fresh metric with no baseline entry
//
// Tolerances are relative (|fresh-base| <= tol * |base|). The default is
// deliberately wide — wall-clock metrics (campaign_*_sec, *_mibps,
// events_per_sec_*) are noisy on shared CI runners — and can be tightened
// or loosened per metric name on the command line; virtual-time metrics
// (e13.*, e14.*, e7.*) are deterministic and tolerate 0 just fine when the
// caller asks for it.
//
// Reporting reuses tools/lintlib's Finding + text/JSON/GitHub formatters so
// CI annotations look exactly like simlint's and rapicheck's.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lintlib/lintlib.h"

namespace benchdiff {

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
};

// Parses the {"metrics":[{"name":...,"value":...,"unit":...},...]} form
// rlbench::BenchJsonWriter emits (nested raw blocks like snapshots_* are
// skipped). Returns false and sets *error on malformed input.
bool ParseBenchJson(std::string_view text, std::vector<Metric>* out,
                    std::string* error);

struct DiffOptions {
  // Band applied when no override matches: |fresh-base| <= tol * |base|.
  double default_tolerance = 0.35;
  // Exact metric name -> tolerance, overriding the default.
  std::map<std::string, double> overrides;
};

// Compares fresh against baseline; `fresh_path` labels the findings.
// Ordering follows the baseline file (then new metrics in fresh order), so
// output is deterministic.
std::vector<lintlib::Finding> DiffBench(const std::vector<Metric>& baseline,
                                        const std::vector<Metric>& fresh,
                                        const DiffOptions& opts,
                                        const std::string& fresh_path);

// True if any finding is an error (BD001) — the CI-blocking condition.
bool HasErrors(const std::vector<lintlib::Finding>& findings);

}  // namespace benchdiff

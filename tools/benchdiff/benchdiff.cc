#include "tools/benchdiff/benchdiff.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace benchdiff {

namespace {

// Scans for `"key":` from `from` and extracts the value token (strings come
// back unquoted). The writer emits no escapes inside names/units, so plain
// quote scanning is exact. Returns npos on failure, else the position just
// past the value.
size_t ExtractAfter(std::string_view text, size_t from, std::string_view key,
                    std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const size_t at = text.find(needle, from);
  if (at == std::string_view::npos) {
    return std::string_view::npos;
  }
  size_t pos = at + needle.size();
  if (pos >= text.size()) {
    return std::string_view::npos;
  }
  if (text[pos] == '"') {
    const size_t end = text.find('"', pos + 1);
    if (end == std::string_view::npos) {
      return std::string_view::npos;
    }
    *out = std::string(text.substr(pos + 1, end - pos - 1));
    return end + 1;
  }
  size_t end = pos;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != ']') {
    ++end;
  }
  if (end == pos) {
    return std::string_view::npos;
  }
  *out = std::string(text.substr(pos, end - pos));
  return end;
}

}  // namespace

bool ParseBenchJson(std::string_view text, std::vector<Metric>* out,
                    std::string* error) {
  out->clear();
  const size_t metrics_at = text.find("\"metrics\":[");
  if (metrics_at == std::string_view::npos) {
    *error = "no \"metrics\" array";
    return false;
  }
  // The metrics array is flat {..},{..} objects; entries after its closing
  // ']' (AddRaw blocks) must not be parsed as metrics. Find the matching
  // bracket by depth — raw blocks can nest arrays, metric objects cannot.
  size_t pos = metrics_at + std::string_view("\"metrics\":[").size();
  size_t depth = 1;
  size_t array_end = std::string_view::npos;
  bool in_string = false;
  for (size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      ++depth;
    } else if (c == ']') {
      if (--depth == 0) {
        array_end = i;
        break;
      }
    }
  }
  if (array_end == std::string_view::npos) {
    *error = "unterminated \"metrics\" array";
    return false;
  }
  const std::string_view body = text.substr(pos, array_end - pos);

  size_t cursor = 0;
  while (cursor < body.size()) {
    Metric m;
    std::string value_text;
    const size_t after_name = ExtractAfter(body, cursor, "name", &m.name);
    if (after_name == std::string_view::npos) {
      break;  // no further metric objects
    }
    const size_t after_value =
        ExtractAfter(body, after_name, "value", &value_text);
    const size_t after_unit = ExtractAfter(body, after_name, "unit", &m.unit);
    if (after_value == std::string_view::npos ||
        after_unit == std::string_view::npos) {
      *error = "metric \"" + m.name + "\" lacks value or unit";
      return false;
    }
    char* parse_end = nullptr;
    m.value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == value_text.c_str()) {
      *error = "metric \"" + m.name + "\" has unparseable value \"" +
               value_text + "\"";
      return false;
    }
    out->push_back(std::move(m));
    cursor = after_unit > after_value ? after_unit : after_value;
  }
  if (out->empty()) {
    *error = "\"metrics\" array has no entries";
    return false;
  }
  return true;
}

std::vector<lintlib::Finding> DiffBench(const std::vector<Metric>& baseline,
                                        const std::vector<Metric>& fresh,
                                        const DiffOptions& opts,
                                        const std::string& fresh_path) {
  std::vector<lintlib::Finding> findings;
  std::map<std::string, const Metric*> fresh_by_name;
  for (const Metric& m : fresh) {
    fresh_by_name.emplace(m.name, &m);
  }
  std::set<std::string> baseline_names;

  const auto tolerance_for = [&](const std::string& name) {
    const auto it = opts.overrides.find(name);
    return it != opts.overrides.end() ? it->second : opts.default_tolerance;
  };
  const auto add = [&](const char* rule, const char* severity,
                       std::string message, std::string hint) {
    lintlib::Finding f;
    f.rule = rule;
    f.severity = severity;
    f.file = fresh_path;
    f.line = 0;
    f.message = std::move(message);
    f.hint = std::move(hint);
    findings.push_back(std::move(f));
  };

  for (const Metric& base : baseline) {
    baseline_names.insert(base.name);
    const auto it = fresh_by_name.find(base.name);
    if (it == fresh_by_name.end()) {
      add("BD002", "warning", "metric " + base.name + " missing from fresh run",
          "regenerate the baseline if the bench dropped this metric on "
          "purpose");
      continue;
    }
    const Metric& got = *it->second;
    if (got.unit != base.unit) {
      add("BD001", "error",
          "metric " + base.name + " changed unit: " + base.unit + " -> " +
              got.unit,
          "unit changes need a deliberate baseline update");
      continue;
    }
    const double tol = tolerance_for(base.name);
    const double band = tol * std::fabs(base.value);
    const double delta = std::fabs(got.value - base.value);
    if (delta > band) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "metric %s out of band: baseline %g, fresh %g %s "
                    "(|delta| %g > %.0f%% band %g)",
                    base.name.c_str(), base.value, got.value,
                    base.unit.c_str(), delta, tol * 100.0, band);
      add("BD001", "error", buf,
          "a real regression, or the baseline needs a deliberate refresh");
    }
  }
  for (const Metric& got : fresh) {
    if (baseline_names.count(got.name) == 0) {
      add("BD003", "warning",
          "new metric " + got.name + " (" + got.unit + ") not in baseline",
          "regenerate the baseline to start tracking it");
    }
  }
  return findings;
}

bool HasErrors(const std::vector<lintlib::Finding>& findings) {
  for (const lintlib::Finding& f : findings) {
    if (f.severity == "error") {
      return true;
    }
  }
  return false;
}

}  // namespace benchdiff

// tracecheck: schema validator for the Chrome trace-event JSON this repo
// emits (src/obs/chrome_trace).
//
// `--trace-out` files are the interface between the simulator and Perfetto;
// a malformed one fails silently in the viewer (events dropped, lanes
// misrendered) long after the run that produced it is gone. tracecheck makes
// the contract checkable in CI: it parses an emitted trace line-wise (the
// exporter guarantees one event object per line precisely so this tool does
// not need a JSON library) and validates the invariants the exporter
// promises:
//
//   TC001 file-structure     header/footer present, every event line parses
//   TC002 required-fields    each phase carries its required keys
//                            (X: pid/tid/ts/dur, i: pid/tid/ts/s, M: pid)
//   TC003 ts-monotonic       non-metadata events sorted by timestamp
//   TC004 lane-overlap       per (pid,tid) lane, X spans do not overlap
//   TC005 pid-metadata       every pid used by an event has a process_name
//   TC006 parent-resolves    every span with a nonzero args.parent points at
//                            a span_id present in the same file — a remote
//                            (cross-node) child whose parent got lost in
//                            assembly is a broken causal tree, not a warning
//   TC007 parent-acyclic     parent chains terminate at a root; a cycle
//                            (possible only if two nodes' traces were merged
//                            with clashing span ids) is unrenderable
//
// Scope: this validates traces produced by this repo's exporter (fixed key
// spelling, "%lld.%03lld" microsecond timestamps), not arbitrary Chrome
// traces — which is exactly what a schema check should pin down.
//
// `tracecheck --critical-path` additionally lifts the file's spans into the
// causal-tree analyzer (src/obs/critical_path.h) and prints the per-class
// per-edge latency breakdown — the offline twin of what bench_e13_fleet
// prints live.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/critical_path.h"

namespace tracecheck {

struct Problem {
  std::string rule;  // "TC003"
  int line = 0;      // 1-based line in the trace file, 0 = whole-file
  std::string message;
};

struct Report {
  std::vector<Problem> problems;
  int64_t events = 0;     // non-metadata events checked
  int64_t metadata = 0;   // "M" events
  int64_t spans = 0;      // "X" events
  int64_t instants = 0;   // "i" events
  int64_t pids = 0;       // distinct pids seen

  bool ok() const { return problems.empty(); }
};

// Validates a whole trace file's text. `path` is used only for messages.
Report CheckTraceText(std::string_view text, std::string_view path);

// Reads and validates `path`. A missing/unreadable file is a TC001 problem.
Report CheckTraceFile(const std::string& path);

// "rule line: message" lines, one per problem, plus a one-line summary.
std::string FormatReport(const Report& report, std::string_view path);

// Lifts every complete ("X") event carrying an args.span_id into a SpanNode
// (kind = event name, actor = the pid's process_name, begin/end from ts/dur)
// for rlobs::AnalyzeCriticalPaths. Events without span ids — hand-written
// fixtures, instants — are skipped. Assumes the text already passed
// CheckTraceText; malformed lines are skipped, not diagnosed again.
std::vector<rlobs::SpanNode> ExtractSpans(std::string_view text);

// Exposed for tests: parses a "%lld.%03lld"-microsecond timestamp (or plain
// integer) into nanoseconds. Returns false on malformed input.
bool ParseMicrosToNanos(std::string_view text, int64_t* out_ns);

}  // namespace tracecheck

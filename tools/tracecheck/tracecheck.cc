#include "tools/tracecheck/tracecheck.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace tracecheck {

namespace {

constexpr std::string_view kHeader =
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
constexpr std::string_view kFooter = "]}";

void Add(Report* report, const char* rule, int line, std::string message) {
  report->problems.push_back(Problem{rule, line, std::move(message)});
}

// Finds `"key":` in `line` and returns the raw value text that follows
// (string values come back without their quotes). Substring search is enough
// for the exporter's fixed vocabulary: the keys tracecheck extracts never
// appear inside emitted string values ("name" is only searched at its first,
// top-level occurrence; args.name is reached via the "args":{"name" prefix).
bool ExtractField(std::string_view line, std::string_view key,
                  std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const size_t at = line.find(needle);
  if (at == std::string_view::npos) {
    return false;
  }
  size_t pos = at + needle.size();
  if (pos >= line.size()) {
    return false;
  }
  if (line[pos] == '"') {  // string value
    ++pos;
    std::string value;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        ++pos;
      }
      value += line[pos++];
    }
    if (pos >= line.size()) {
      return false;  // unterminated string
    }
    *out = value;
    return true;
  }
  // Number (or other bare token): runs until a JSON delimiter.
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ']') {
    ++end;
  }
  if (end == pos) {
    return false;
  }
  *out = std::string(line.substr(pos, end - pos));
  return true;
}

bool ParseInt(std::string_view text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  size_t i = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) {
      return false;
    }
  }
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return false;
    }
    value = value * 10 + (text[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace

bool ParseMicrosToNanos(std::string_view text, int64_t* out_ns) {
  const size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    int64_t micros = 0;
    if (!ParseInt(text, &micros)) {
      return false;
    }
    *out_ns = micros * 1000;
    return true;
  }
  int64_t micros = 0;
  if (!ParseInt(text.substr(0, dot), &micros)) {
    return false;
  }
  std::string_view frac = text.substr(dot + 1);
  if (frac.empty() || frac.size() > 3) {
    return false;
  }
  int64_t frac_ns = 0;
  if (!ParseInt(frac, &frac_ns) || frac_ns < 0) {
    return false;
  }
  for (size_t i = frac.size(); i < 3; ++i) {
    frac_ns *= 10;
  }
  const bool negative = micros < 0 || (!text.empty() && text[0] == '-');
  *out_ns = negative ? micros * 1000 - frac_ns : micros * 1000 + frac_ns;
  return true;
}

Report CheckTraceText(std::string_view text, std::string_view path) {
  Report report;

  // Split into lines (the exporter emits exactly one event per line).
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) {
        lines.push_back(text.substr(start));
      }
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }

  if (lines.empty() || lines.front() != kHeader) {
    Add(&report, "TC001", 1,
        std::string(path) + ": missing trace header " + std::string(kHeader));
    return report;
  }
  size_t last = lines.size();
  while (last > 0 && lines[last - 1].empty()) {
    --last;
  }
  if (last == 0 || lines[last - 1] != kFooter) {
    Add(&report, "TC001", static_cast<int>(last),
        std::string(path) + ": missing trace footer \"]}\"");
    return report;
  }

  std::set<int64_t> meta_pids;
  std::map<int64_t, int> used_pids;  // pid -> first line using it
  std::map<std::pair<int64_t, int64_t>, int64_t> lane_end_ns;
  int64_t last_ts_ns = -1;

  // Parent links for TC006/TC007, collected as spans stream past.
  struct SpanLink {
    int line = 0;
    uint64_t id = 0;
    uint64_t parent = 0;  // 0 = root
  };
  std::vector<SpanLink> links;
  std::set<uint64_t> span_ids;

  for (size_t i = 1; i + 1 < last; ++i) {
    const int line_no = static_cast<int>(i) + 1;
    std::string_view line = lines[i];
    if (!line.empty() && line.back() == ',') {
      line.remove_suffix(1);
    }
    if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
      Add(&report, "TC001", line_no, "event line is not a {...} object");
      continue;
    }

    std::string ph;
    if (!ExtractField(line, "ph", &ph)) {
      Add(&report, "TC002", line_no, "event has no \"ph\" phase field");
      continue;
    }
    std::string pid_text;
    int64_t pid = 0;
    if (!ExtractField(line, "pid", &pid_text) || !ParseInt(pid_text, &pid)) {
      Add(&report, "TC002", line_no, "event has no integer \"pid\"");
      continue;
    }

    if (ph == "M") {
      std::string name;
      if (!ExtractField(line, "name", &name) || name != "process_name") {
        Add(&report, "TC002", line_no,
            "metadata event is not a process_name record");
        continue;
      }
      std::string actor;
      if (line.find("\"args\":{\"name\":") == std::string_view::npos ||
          !ExtractField(line.substr(line.find("\"args\":")), "name", &actor) ||
          actor.empty()) {
        Add(&report, "TC002", line_no,
            "process_name metadata has no args.name");
        continue;
      }
      meta_pids.insert(pid);
      ++report.metadata;
      continue;
    }

    if (ph != "X" && ph != "i") {
      Add(&report, "TC002", line_no, "unknown phase \"" + ph + "\"");
      continue;
    }
    used_pids.emplace(pid, line_no);

    std::string name;
    if (!ExtractField(line, "name", &name) || name.empty()) {
      Add(&report, "TC002", line_no, "event has no \"name\"");
      continue;
    }
    std::string tid_text;
    int64_t tid = 0;
    if (!ExtractField(line, "tid", &tid_text) || !ParseInt(tid_text, &tid)) {
      Add(&report, "TC002", line_no, "event has no integer \"tid\"");
      continue;
    }
    std::string ts_text;
    int64_t ts_ns = 0;
    if (!ExtractField(line, "ts", &ts_text) ||
        !ParseMicrosToNanos(ts_text, &ts_ns) || ts_ns < 0) {
      Add(&report, "TC002", line_no,
          "event has no parseable non-negative \"ts\"");
      continue;
    }

    if (ts_ns < last_ts_ns) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "timestamp goes backwards (%lld ns after %lld ns)",
                    static_cast<long long>(ts_ns),
                    static_cast<long long>(last_ts_ns));
      Add(&report, "TC003", line_no, buf);
    }
    last_ts_ns = ts_ns;
    ++report.events;

    if (ph == "i") {
      std::string scope;
      if (!ExtractField(line, "s", &scope) || scope.empty()) {
        Add(&report, "TC002", line_no, "instant event has no \"s\" scope");
        continue;
      }
      ++report.instants;
      continue;
    }

    // ph == "X"
    std::string dur_text;
    int64_t dur_ns = 0;
    if (!ExtractField(line, "dur", &dur_text) ||
        !ParseMicrosToNanos(dur_text, &dur_ns) || dur_ns < 0) {
      Add(&report, "TC002", line_no,
          "complete event has no parseable non-negative \"dur\"");
      continue;
    }
    const auto lane = std::make_pair(pid, tid);
    const auto it = lane_end_ns.find(lane);
    if (it != lane_end_ns.end() && ts_ns < it->second) {
      char buf[128];
      std::snprintf(
          buf, sizeof(buf),
          "span on pid %lld tid %lld begins at %lld ns before the lane's "
          "previous span ended at %lld ns",
          static_cast<long long>(pid), static_cast<long long>(tid),
          static_cast<long long>(ts_ns), static_cast<long long>(it->second));
      Add(&report, "TC004", line_no, buf);
    }
    lane_end_ns[lane] = ts_ns + dur_ns;
    ++report.spans;

    // Parent links are optional (hand-built fixtures omit them), but when a
    // span carries them they must form a well-founded forest — checked after
    // the whole file is read, since a parent legitimately appears later in
    // the file than its remote child (it ends later).
    std::string sid_text;
    int64_t sid = 0;
    if (ExtractField(line, "span_id", &sid_text) && ParseInt(sid_text, &sid) &&
        sid > 0) {
      span_ids.insert(static_cast<uint64_t>(sid));
      std::string parent_text;
      int64_t parent = 0;
      if (ExtractField(line, "parent", &parent_text) &&
          ParseInt(parent_text, &parent) && parent > 0) {
        links.push_back(SpanLink{line_no, static_cast<uint64_t>(sid),
                                 static_cast<uint64_t>(parent)});
      }
    }
  }

  // TC006: every parent resolves within this file.
  std::map<uint64_t, uint64_t> parent_of;
  std::map<uint64_t, int> link_line;
  for (const SpanLink& link : links) {
    if (span_ids.find(link.parent) == span_ids.end()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "span %llu's parent %llu is not a span in this trace",
                    static_cast<unsigned long long>(link.id),
                    static_cast<unsigned long long>(link.parent));
      Add(&report, "TC006", link.line, buf);
      continue;
    }
    parent_of[link.id] = link.parent;
    link_line.emplace(link.id, link.line);
  }

  // TC007: parent chains terminate. Nodes proven to reach a root are cached
  // so the sweep stays linear; a chain that revisits itself is reported once,
  // at the span that closed the cycle.
  std::set<uint64_t> reaches_root;
  for (const SpanLink& link : links) {
    std::vector<uint64_t> path;
    std::set<uint64_t> on_path;
    uint64_t at = link.id;
    bool cyclic = false;
    while (parent_of.count(at) > 0 && reaches_root.count(at) == 0) {
      if (!on_path.insert(at).second) {
        cyclic = true;
        break;
      }
      path.push_back(at);
      at = parent_of[at];
    }
    for (const uint64_t id : path) {
      reaches_root.insert(id);  // cycle members too: report each cycle once
    }
    if (cyclic) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "span %llu's parent chain cycles back through span %llu",
                    static_cast<unsigned long long>(link.id),
                    static_cast<unsigned long long>(at));
      Add(&report, "TC007", link.line, buf);
    }
  }

  for (const auto& [pid, line_no] : used_pids) {
    if (meta_pids.find(pid) == meta_pids.end()) {
      char buf[80];
      std::snprintf(buf, sizeof(buf),
                    "pid %lld has no process_name metadata",
                    static_cast<long long>(pid));
      Add(&report, "TC005", line_no, buf);
    }
  }
  report.pids = static_cast<int64_t>(used_pids.size());
  return report;
}

Report CheckTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Report report;
    Add(&report, "TC001", 0, "cannot read " + path);
    return report;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return CheckTraceText(text, path);
}

std::vector<rlobs::SpanNode> ExtractSpans(std::string_view text) {
  std::vector<rlobs::SpanNode> spans;
  std::map<int64_t, std::string> actor_of_pid;

  size_t start = 0;
  // Two streaming concerns, one pass: process_name metadata always precedes
  // the events of its pid (the exporter emits all metadata first).
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      nl = text.size();
    }
    std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == ',') {
      line.remove_suffix(1);
    }

    std::string ph;
    std::string pid_text;
    int64_t pid = 0;
    if (!ExtractField(line, "ph", &ph) ||
        !ExtractField(line, "pid", &pid_text) || !ParseInt(pid_text, &pid)) {
      continue;
    }
    if (ph == "M") {
      std::string actor;
      const size_t args_at = line.find("\"args\":");
      if (args_at != std::string_view::npos &&
          ExtractField(line.substr(args_at), "name", &actor)) {
        actor_of_pid.emplace(pid, actor);
      }
      continue;
    }
    if (ph != "X") {
      continue;
    }

    std::string name;
    std::string ts_text;
    std::string dur_text;
    std::string sid_text;
    int64_t ts_ns = 0;
    int64_t dur_ns = 0;
    int64_t sid = 0;
    if (!ExtractField(line, "name", &name) ||
        !ExtractField(line, "ts", &ts_text) ||
        !ParseMicrosToNanos(ts_text, &ts_ns) ||
        !ExtractField(line, "dur", &dur_text) ||
        !ParseMicrosToNanos(dur_text, &dur_ns) ||
        !ExtractField(line, "span_id", &sid_text) ||
        !ParseInt(sid_text, &sid) || sid <= 0) {
      continue;
    }
    std::string parent_text;
    int64_t parent = 0;
    if (ExtractField(line, "parent", &parent_text)) {
      ParseInt(parent_text, &parent);
    }
    rlobs::SpanNode node;
    node.id = static_cast<uint64_t>(sid);
    node.parent = parent > 0 ? static_cast<uint64_t>(parent) : 0;
    node.begin_ns = ts_ns;
    node.end_ns = ts_ns + dur_ns;
    const auto actor_it = actor_of_pid.find(pid);
    node.actor = actor_it != actor_of_pid.end() ? actor_it->second
                                                : "pid-" + pid_text;
    node.kind = name;
    spans.push_back(std::move(node));
  }
  return spans;
}

std::string FormatReport(const Report& report, std::string_view path) {
  std::string out;
  char buf[160];
  for (const Problem& p : report.problems) {
    std::snprintf(buf, sizeof(buf), "%s %s:%d: %s\n", p.rule.c_str(),
                  std::string(path).c_str(), p.line, p.message.c_str());
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "%s: %lld events (%lld spans, %lld instants, %lld pids), %zu problems\n",
      std::string(path).c_str(), static_cast<long long>(report.events),
      static_cast<long long>(report.spans),
      static_cast<long long>(report.instants),
      static_cast<long long>(report.pids), report.problems.size());
  out += buf;
  return out;
}

}  // namespace tracecheck

// tracecheck CLI: validates Chrome trace-event JSON files emitted by
// --trace-out (see tools/tracecheck/tracecheck.h for the rule list).
// With --critical-path, additionally prints the per-class per-edge latency
// breakdown of the file's causal span trees (src/obs/critical_path.h).
// Exit status: 0 = all files valid, 1 = problems found, 2 = usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/critical_path.h"
#include "tools/tracecheck/tracecheck.h"

int main(int argc, char** argv) {
  bool quiet = false;
  bool critical_path = false;
  int first_file = 1;
  while (first_file < argc && argv[first_file][0] == '-') {
    if (std::strcmp(argv[first_file], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[first_file], "--critical-path") == 0) {
      critical_path = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[first_file]);
      return 2;
    }
    ++first_file;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: %s [--quiet] [--critical-path] TRACE.json...\n",
                 argv[0]);
    return 2;
  }

  bool all_ok = true;
  for (int i = first_file; i < argc; ++i) {
    const tracecheck::Report report = tracecheck::CheckTraceFile(argv[i]);
    if (!report.ok()) {
      all_ok = false;
    }
    if (!report.ok() || !quiet) {
      std::fputs(tracecheck::FormatReport(report, argv[i]).c_str(),
                 report.ok() ? stdout : stderr);
    }
    if (critical_path && report.ok()) {
      std::ifstream in(argv[i]);
      std::ostringstream buf;
      buf << in.rdbuf();
      const auto spans = tracecheck::ExtractSpans(buf.str());
      const auto cp = rlobs::AnalyzeCriticalPaths(spans);
      if (cp.classes.empty()) {
        std::printf("%s: no spans to analyze\n", argv[i]);
      } else {
        std::fputs(rlobs::FormatCriticalPath(cp).c_str(), stdout);
      }
    }
  }
  return all_ok ? 0 : 1;
}

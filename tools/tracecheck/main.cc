// tracecheck CLI: validates Chrome trace-event JSON files emitted by
// --trace-out (see tools/tracecheck/tracecheck.h for the rule list).
// Exit status: 0 = all files valid, 1 = problems found, 2 = usage.
#include <cstdio>
#include <cstring>

#include "tools/tracecheck/tracecheck.h"

int main(int argc, char** argv) {
  bool quiet = false;
  int first_file = 1;
  if (first_file < argc && std::strcmp(argv[first_file], "--quiet") == 0) {
    quiet = true;
    ++first_file;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: %s [--quiet] TRACE.json...\n", argv[0]);
    return 2;
  }

  bool all_ok = true;
  for (int i = first_file; i < argc; ++i) {
    const tracecheck::Report report = tracecheck::CheckTraceFile(argv[i]);
    if (!report.ok()) {
      all_ok = false;
    }
    if (!report.ok() || !quiet) {
      std::fputs(tracecheck::FormatReport(report, argv[i]).c_str(),
                 report.ok() ? stdout : stderr);
    }
  }
  return all_ok ? 0 : 1;
}

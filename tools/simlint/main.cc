// simlint CLI.
//
//   simlint [options] PATH...
//
//   PATH                directory (recursive *.h/*.cc walk, sorted) or file
//   --baseline FILE     subtract FILE's suppressions; fail only on new hits
//   --write-baseline F  serialize current findings to F and exit 0
//   --json              machine-readable output
//   --github            GitHub Actions ::error annotations
//   --list-rules        print the rule table and exit
//
// Exit status: 0 clean (after baseline), 1 findings, 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "tools/simlint/simlint.h"

using lintlib::CollectFiles;
using lintlib::ReadFile;

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string write_baseline_path;
  bool json = false;
  bool github = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "simlint: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--write-baseline") {
      write_baseline_path = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--list-rules") {
      for (const simlint::RuleInfo& r : simlint::Rules()) {
        std::printf("%s %-22s %-7s %s\n", r.id, r.name, r.severity,
                    r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: simlint [--json] [--github] [--baseline FILE]\n"
          "               [--write-baseline FILE] [--list-rules] PATH...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "simlint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "simlint: no paths given (try: simlint src bench)\n");
    return 2;
  }

  std::string error;
  const std::vector<std::string> files = CollectFiles(paths, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "simlint: %s\n", error.c_str());
    return 2;
  }

  // Pass 1: index every file (cross-file member declarations). Pass 2: lint.
  std::vector<simlint::SourceFile> sources;
  sources.reserve(files.size());
  simlint::ProjectIndex index;
  for (const std::string& file : files) {
    std::string contents;
    if (!ReadFile(file, &contents)) {
      std::fprintf(stderr, "simlint: cannot read %s\n", file.c_str());
      return 2;
    }
    sources.push_back(simlint::StripSource(file, contents));
    index.AddFile(sources.back());
  }
  std::vector<simlint::Finding> findings;
  for (const simlint::SourceFile& src : sources) {
    std::vector<simlint::Finding> f = simlint::LintFile(src, index);
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "simlint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << simlint::SerializeBaseline(findings);
    std::printf("simlint: wrote %zu finding(s) to %s\n", findings.size(),
                write_baseline_path.c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFile(baseline_path, &text)) {
      std::fprintf(stderr, "simlint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<simlint::BaselineEntry> entries;
    if (!simlint::ParseBaseline(text, &entries, &error)) {
      std::fprintf(stderr, "simlint: %s\n", error.c_str());
      return 2;
    }
    findings = simlint::ApplyBaseline(std::move(findings), entries);
  }

  if (json) {
    std::fputs(simlint::FormatJson(findings).c_str(), stdout);
  } else if (github) {
    std::fputs(simlint::FormatGithub(findings).c_str(), stdout);
  } else {
    std::fputs(simlint::FormatText(findings).c_str(), stdout);
    std::printf("simlint: %zu file(s), %zu finding(s)%s\n", files.size(),
                findings.size(),
                baseline_path.empty() ? "" : " not in baseline");
  }
  return findings.empty() ? 0 : 1;
}

// simlint: a determinism linter for this repository.
//
// The simulator's whole value proposition is "same seed, same execution".
// That property is easy to break from far away: one range-for over an
// unordered_map whose iteration order feeds an event timestamp, one
// std::chrono::steady_clock deadline in a driver loop, one getenv that makes
// CI behave differently from a laptop. simlint is a token/regex + context
// scanner (deliberately not libclang: it must build in seconds on a bare
// toolchain and run on a single file in a test) that enforces the
// determinism discipline documented in DESIGN.md. The scanning + reporting
// core (strip pass, pragmas, baselines, output formats) lives in
// tools/lintlib and is shared with tools/rapicheck; this header keeps
// simlint's historical API as thin aliases over it.
//
// Rules:
//   SL001 wall-clock-or-entropy   banned ambient time/randomness sources
//   SL002 ambient-state           getenv / mutable static state in core dirs
//   SL003 unordered-iteration     iterating unordered_{map,set} members
//   SL004 pointer-ordering        pointer-keyed ordered containers
//   SL005 raw-new-delete          raw new/delete outside arena/device code
//   SL006 float-accumulation      += on float/double accumulators
//   SL007 thread-primitives       std::thread/async/mutex in the sim core
//                                 (threads live in src/harness/parallel_runner)
//   SL008 wire-byte-punning       reinterpret_cast/memcpy on on-disk/wire
//                                 bytes outside the sanctioned codecs
//
// Suppression: a `// simlint: <tag>` comment on the finding's line or the
// line directly above it, with tag one of clock-ok, env-ok, static-ok,
// ordered-ok, ptr-ok, new-ok, float-ok, thread-ok, wire-ok. Pragmas are
// expected to carry a short justification in parentheses; the linter does
// not parse it, humans read it in review.
//
// Baselines: `--write-baseline` serializes current findings keyed by
// (rule, file, CRC32 of the normalized source line) — robust to line-number
// drift — and `--baseline` subtracts them, so CI fails only on NEW findings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lintlib/lintlib.h"

namespace simlint {

using Finding = lintlib::Finding;
using RuleInfo = lintlib::RuleInfo;
using SourceFile = lintlib::SourceFile;
using BaselineEntry = lintlib::BaselineEntry;

// The full rule table, in id order.
const std::vector<RuleInfo>& Rules();

// Lexical preprocessing with simlint's pragma marker.
inline SourceFile StripSource(std::string path, std::string_view contents) {
  return lintlib::StripSource(std::move(path), contents, "simlint:");
}

// Cross-file context: member declarations of unordered containers (names
// ending in `_`), collected from every scanned file so a loop in foo.cc over
// a member declared in foo.h is still caught.
struct ProjectIndex {
  // container name -> "file:line" of the declaration
  std::map<std::string, std::string> unordered_members;

  void AddFile(const SourceFile& file);
};

// Lints one preprocessed file. Findings come back sorted by line.
std::vector<Finding> LintFile(const SourceFile& file,
                              const ProjectIndex& index);

// Convenience for tests and single-snippet scans: strip + self-index + lint.
std::vector<Finding> LintSource(std::string path, std::string_view contents);

// --- Baseline / output: lintlib with simlint's tool identity --------------

inline std::string SerializeBaseline(const std::vector<Finding>& findings) {
  return lintlib::SerializeBaseline(findings, "simlint");
}
inline std::string SerializeBaseline(const std::vector<BaselineEntry>& e) {
  return lintlib::SerializeBaseline(e, "simlint");
}
inline bool ParseBaseline(std::string_view text,
                          std::vector<BaselineEntry>* out,
                          std::string* error) {
  return lintlib::ParseBaseline(text, out, error);
}
inline std::vector<Finding> ApplyBaseline(
    std::vector<Finding> findings,
    const std::vector<BaselineEntry>& baseline) {
  return lintlib::ApplyBaseline(std::move(findings), baseline);
}

inline std::string FormatText(const std::vector<Finding>& findings) {
  return lintlib::FormatText(findings);
}
inline std::string FormatJson(const std::vector<Finding>& findings) {
  return lintlib::FormatJson(findings);
}
inline std::string FormatGithub(const std::vector<Finding>& findings) {
  return lintlib::FormatGithub(findings, "simlint");
}

// CRC32 (Castagnoli, via src/sim/crc32) of the whitespace-normalized line.
inline uint32_t NormalizedCrc(std::string_view stripped_line,
                              std::string* normalized_out = nullptr) {
  return lintlib::NormalizedCrc(stripped_line, normalized_out);
}

}  // namespace simlint

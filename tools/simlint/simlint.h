// simlint: a determinism linter for this repository.
//
// The simulator's whole value proposition is "same seed, same execution".
// That property is easy to break from far away: one range-for over an
// unordered_map whose iteration order feeds an event timestamp, one
// std::chrono::steady_clock deadline in a driver loop, one getenv that makes
// CI behave differently from a laptop. simlint is a token/regex + context
// scanner (deliberately not libclang: it must build in seconds on a bare
// toolchain and run on a single file in a test) that enforces the
// determinism discipline documented in DESIGN.md.
//
// Rules:
//   SL001 wall-clock-or-entropy   banned ambient time/randomness sources
//   SL002 ambient-state           getenv / mutable static state in core dirs
//   SL003 unordered-iteration     iterating unordered_{map,set} members
//   SL004 pointer-ordering        pointer-keyed ordered containers
//   SL005 raw-new-delete          raw new/delete outside arena/device code
//   SL006 float-accumulation      += on float/double accumulators
//   SL007 thread-primitives       std::thread/async/mutex in the sim core
//                                 (threads live in src/harness/parallel_runner)
//
// Suppression: a `// simlint: <tag>` comment on the finding's line or the
// line directly above it, with tag one of clock-ok, env-ok, static-ok,
// ordered-ok, ptr-ok, new-ok, float-ok, thread-ok. Pragmas are expected to
// carry a short justification in parentheses; the linter does not parse it,
// humans read it in review.
//
// Baselines: `--write-baseline` serializes current findings keyed by
// (rule, file, CRC32 of the normalized source line) — robust to line-number
// drift — and `--baseline` subtracts them, so CI fails only on NEW findings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace simlint {

struct Finding {
  std::string rule;      // "SL003"
  std::string severity;  // "error" | "warning"
  std::string file;
  int line = 0;  // 1-based
  std::string message;
  std::string hint;        // fix-it suggestion
  uint32_t crc = 0;        // CRC32 of the normalized source line
  std::string normalized;  // whitespace-collapsed, comment/string-stripped
};

struct RuleInfo {
  const char* id;
  const char* name;
  const char* severity;
  const char* summary;
};

// The full rule table, in id order.
const std::vector<RuleInfo>& Rules();

// A source file after lexical preprocessing. `code[i]` is line i with
// comments and string/char literal *contents* blanked (quotes preserved), so
// rules never fire on prose or on fixture snippets embedded in test
// strings. `pragmas[i]` holds the `simlint:` tags found on line i.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::vector<std::string>> pragmas;
};

SourceFile StripSource(std::string path, std::string_view contents);

// Cross-file context: member declarations of unordered containers (names
// ending in `_`), collected from every scanned file so a loop in foo.cc over
// a member declared in foo.h is still caught.
struct ProjectIndex {
  // container name -> "file:line" of the declaration
  std::map<std::string, std::string> unordered_members;

  void AddFile(const SourceFile& file);
};

// Lints one preprocessed file. Findings come back sorted by line.
std::vector<Finding> LintFile(const SourceFile& file,
                              const ProjectIndex& index);

// Convenience for tests and single-snippet scans: strip + self-index + lint.
std::vector<Finding> LintSource(std::string path, std::string_view contents);

// --- Baseline -------------------------------------------------------------

struct BaselineEntry {
  std::string rule;
  std::string file;
  uint32_t crc = 0;
  int count = 0;  // findings sharing this (rule, file, crc) key
};

// Deterministic text form (sorted by rule, file, crc). Parse(Serialize(x))
// then Serialize again is byte-identical.
std::string SerializeBaseline(const std::vector<Finding>& findings);
std::string SerializeBaseline(const std::vector<BaselineEntry>& entries);
bool ParseBaseline(std::string_view text, std::vector<BaselineEntry>* out,
                   std::string* error);
// Removes findings covered by the baseline (each entry suppresses up to
// `count` findings with the same key). Leftover findings are "new".
std::vector<Finding> ApplyBaseline(std::vector<Finding> findings,
                                   const std::vector<BaselineEntry>& baseline);

// --- Output ---------------------------------------------------------------

std::string FormatText(const std::vector<Finding>& findings);
std::string FormatJson(const std::vector<Finding>& findings);
// GitHub Actions workflow-command annotations (::error file=...).
std::string FormatGithub(const std::vector<Finding>& findings);

// CRC32 (Castagnoli, via src/sim/crc32) of the whitespace-normalized line.
uint32_t NormalizedCrc(std::string_view stripped_line,
                       std::string* normalized_out = nullptr);

}  // namespace simlint

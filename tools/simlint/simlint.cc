#include "tools/simlint/simlint.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace simlint {

namespace {

using lintlib::FindWord;
using lintlib::IsIdentChar;
using lintlib::SkipAngles;
using lintlib::TailIdentifier;
using lintlib::TrimView;
using lintlib::UnderDir;

bool InSrc(std::string_view path) { return UnderDir(path, "src"); }
bool InBench(std::string_view path) { return UnderDir(path, "bench"); }

// Directories where ambient process state (getenv, mutable statics) is
// banned outright: the simulation core, the trusted layer, fault injection.
bool InAmbientBanDirs(std::string_view path) {
  return UnderDir(path, "src/sim") || UnderDir(path, "src/rapilog") ||
         UnderDir(path, "src/faults");
}

// SL007 scope: everything under src/ except the parallel runner, which is
// the one sanctioned home for threads (it fans out whole simulations; each
// simulation stays single-threaded). tools/ and tests/ are host-side code
// and exempt.
//
// Decision (revisited for src/shard): the fleet topology — N shard guests,
// a coordinator, and the network fabric between them — deliberately gets NO
// allowlist entry. "N machines" is modelled as N coroutine actors inside
// ONE simulator, which is exactly what makes a 2PC crash schedule
// replayable from a seed; real threads per shard would trade that away for
// nothing (the simulated machines never execute concurrently anyway).
// Fleet parallelism, like everything else, happens across whole
// simulations: bench_e13_fleet fans sweep cells and rapilog_chaos fans
// fleet episodes through parallel_runner, one Simulator per job.
bool InThreadBanScope(std::string_view path) {
  if (path.substr(0, 2) == "./") path.remove_prefix(2);
  if (path.substr(0, 27) == "src/harness/parallel_runner") return false;
  return InSrc(path);
}

// SL008 scope: the directories that own persistent or wire byte formats.
// Inside them, type punning (reinterpret_cast, memcpy through &object)
// silently bakes host endianness and padding into bytes that are supposed
// to be a stable format. The sanctioned codecs — layout.h's
// LoadScalar/StoreScalar and the shard wire Reader/PutU* — are the only
// places allowed to touch object representations.
bool InWirePunScope(std::string_view path) {
  return UnderDir(path, "src/db") || UnderDir(path, "src/shard") ||
         UnderDir(path, "src/replica") || UnderDir(path, "src/storage") ||
         UnderDir(path, "src/rapilog");
}

bool InWirePunAllowlist(std::string_view path) {
  if (path.substr(0, 2) == "./") path.remove_prefix(2);
  return path == "src/db/layout.h" || path == "src/shard/wire.h" ||
         path == "src/shard/wire.cc";
}

const char* SeverityFor(std::string_view rule) {
  for (const RuleInfo& r : Rules()) {
    if (rule == r.id) return r.severity;
  }
  return "error";
}

struct PendingFinding {
  const char* rule;
  const char* tag;  // suppression pragma tag
  int line;         // 1-based
  std::string message;
  std::string hint;
};

class Linter {
 public:
  Linter(const SourceFile& file, const ProjectIndex& index)
      : file_(file), index_(index) {}

  std::vector<Finding> Run() {
    CollectLocalDeclarations();
    for (size_t i = 0; i < file_.code.size(); ++i) {
      const std::string& line = file_.code[i];
      const int ln = static_cast<int>(i) + 1;
      CheckWallClock(line, ln);
      CheckAmbientState(line, ln);
      CheckUnorderedIteration(line, ln);
      CheckPointerOrdering(line, ln);
      CheckRawNewDelete(line, ln);
      CheckFloatAccumulation(line, ln);
      CheckThreadPrimitives(line, ln);
      CheckWireBytePunning(line, ln);
    }
    return Resolve();
  }

 private:
  void Report(const char* rule, const char* tag, int line, std::string message,
              std::string hint) {
    pending_.push_back(
        PendingFinding{rule, tag, line, std::move(message), std::move(hint)});
  }

  // SL001: ambient time and entropy. The simulator's virtual clock and
  // seeded RNG are the only admissible sources.
  void CheckWallClock(const std::string& line, int ln) {
    static constexpr const char* kBannedWords[] = {
        "system_clock",     "steady_clock", "high_resolution_clock",
        "random_device",    "gettimeofday", "clock_gettime",
        "timespec_get",     "mt19937",      "mt19937_64",
        "default_random_engine",
    };
    for (const char* word : kBannedWords) {
      if (FindWord(line, word) != std::string_view::npos) {
        Report("SL001", "clock-ok", ln,
               std::string("banned ambient time/entropy source '") + word +
                   "'",
               "use sim.Now() for time and the simulator's seeded "
               "rlsim::Rng for randomness");
      }
    }
    // rand(/srand(/time( need the call parenthesis to avoid flagging
    // identifiers like `operand` or members named `time`.
    for (const char* fn : {"rand", "srand", "time", "clock"}) {
      size_t pos = FindWord(line, fn);
      while (pos != std::string_view::npos) {
        size_t after = pos + std::string_view(fn).size();
        while (after < line.size() && line[after] == ' ') ++after;
        // `.time(` / `->time(` are member calls (e.g. on a config struct),
        // not libc; only flag the free function.
        const bool member_call =
            pos >= 1 && (line[pos - 1] == '.' ||
                         (pos >= 2 && line[pos - 2] == '-' &&
                          line[pos - 1] == '>') ||
                         line[pos - 1] == ':');
        if (after < line.size() && line[after] == '(' && !member_call) {
          Report("SL001", "clock-ok", ln,
                 std::string("banned libc time/entropy call '") + fn + "('",
                 "derive values from the simulator clock or seeded Rng");
        }
        pos = FindWord(line, fn, pos + 1);
      }
    }
  }

  // SL002: getenv and mutable static state in the core directories. Both
  // make an episode's behaviour depend on the process, not the seed.
  void CheckAmbientState(const std::string& line, int ln) {
    if (!InAmbientBanDirs(file_.path)) return;
    if (FindWord(line, "getenv") != std::string_view::npos) {
      Report("SL002", "env-ok", ln,
             "getenv reads ambient process state inside the deterministic "
             "core",
             "thread the knob through an options struct / CLI flag instead");
    }
    // A `static` (or thread_local) definition that is not const/constexpr
    // and is a variable, not a function: variables have `=`, `{` or `;`
    // before any parameter list.
    std::string_view code = TrimView(line);
    const bool is_static = code.substr(0, 7) == "static " ||
                           code.substr(0, 13) == "thread_local ";
    if (!is_static) return;
    code.remove_prefix(code.find(' ') + 1);
    code = TrimView(code);
    if (code.substr(0, 6) == "const " || code.substr(0, 10) == "constexpr " ||
        code.substr(0, 10) == "constinit ") {
      return;
    }
    // Distinguish `static int hits = 0;` from `static int Hits();`: find the
    // first of '(', '=', ';', '{' outside template angles.
    size_t i = 0;
    char first = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == '<') {
        const size_t skip = SkipAngles(code, i);
        if (skip == std::string_view::npos) break;
        i = skip;
        continue;
      }
      if (c == '(' || c == '=' || c == ';' || c == '{') {
        first = c;
        break;
      }
      ++i;
    }
    if (first != 0 && first != '(') {
      Report("SL002", "static-ok", ln,
             "mutable static state in the deterministic core survives "
             "across episodes",
             "make it const/constexpr, or move it into a per-episode object");
    }
  }

  // SL003: iteration over unordered containers. Iteration order is
  // implementation-defined; even when libstdc++ happens to be stable, the
  // order depends on insertion history and rehash points — never let it
  // reach event ordering. Fix: rlsim::SortedKeys (src/sim/ordered.h) or a
  // `// simlint: ordered-ok (<why order cannot matter>)` pragma.
  void CheckUnorderedIteration(const std::string& line, int ln) {
    if (!InSrc(file_.path)) return;
    // Range-for: `for (decl : expr)`.
    const size_t forPos = FindWord(line, "for");
    if (forPos != std::string_view::npos) {
      const size_t open = line.find('(', forPos);
      const size_t colon = line.find(':', forPos);
      if (open != std::string_view::npos && colon != std::string_view::npos &&
          colon > open && line.compare(colon - 1, 2, "::") != 0 &&
          (colon + 1 >= line.size() || line[colon + 1] != ':')) {
        const size_t close = line.rfind(')');
        const std::string_view expr =
            close != std::string_view::npos && close > colon
                ? std::string_view(line).substr(colon + 1, close - colon - 1)
                : std::string_view(line).substr(colon + 1);
        MaybeFlagUnordered(TailIdentifier(expr), ln, "range-for");
      }
    }
    // Iterator loops / explicit traversal: name.begin(), name.cbegin().
    for (const char* probe : {".begin()", ".cbegin()"}) {
      const size_t pos = line.find(probe);
      if (pos != std::string_view::npos) {
        MaybeFlagUnordered(
            TailIdentifier(std::string_view(line).substr(0, pos)), ln,
            "iterator traversal");
      }
    }
  }

  void MaybeFlagUnordered(std::string_view name, int ln, const char* how) {
    if (name.empty()) return;
    const std::string key(name);
    std::string declared_at;
    if (auto it = local_unordered_.find(key); it != local_unordered_.end()) {
      declared_at = it->second;
    } else if (auto jt = index_.unordered_members.find(key);
               jt != index_.unordered_members.end() && key.back() == '_') {
      declared_at = jt->second;
    } else {
      return;
    }
    Report("SL003", "ordered-ok", ln,
           std::string(how) + " over unordered container '" + key +
               "' (declared at " + declared_at +
               "); iteration order is not deterministic",
           "iterate rlsim::SortedKeys(" + key +
               ") from src/sim/ordered.h, or add `// simlint: ordered-ok "
               "(<why order cannot matter>)`");
  }

  // SL004: pointer-keyed ordered containers. std::map<T*, V> / std::set<T*>
  // order by address, and addresses differ run to run.
  void CheckPointerOrdering(const std::string& line, int ln) {
    if (!InSrc(file_.path)) return;
    for (const char* cont : {"map", "multimap", "set", "multiset", "less",
                             "greater", "priority_queue"}) {
      size_t pos = FindWord(line, cont);
      while (pos != std::string_view::npos) {
        const size_t open = pos + std::string_view(cont).size();
        if (open < line.size() && line[open] == '<') {
          // First template argument (the key / compared type).
          std::string_view arg = FirstTemplateArg(line, open);
          if (arg.find('*') != std::string_view::npos &&
              arg.find("char") == std::string_view::npos) {
            Report("SL004", "ptr-ok", ln,
                   std::string("'") + cont +
                       "' ordered by pointer key '" + std::string(arg) +
                       "': address order differs between runs",
                   "key by a stable id (name, index, sequence number) and "
                   "look the object up, or supply a by-value comparator");
          }
        }
        pos = FindWord(line, cont, pos + 1);
      }
    }
  }

  static std::string_view FirstTemplateArg(std::string_view line,
                                           size_t open) {
    int depth = 0;
    size_t start = open + 1;
    for (size_t i = open; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '<') ++depth;
      if (c == '>') {
        --depth;
        if (depth == 0) return TrimView(line.substr(start, i - start));
      }
      if (c == ',' && depth == 1) {
        return TrimView(line.substr(start, i - start));
      }
    }
    return TrimView(line.substr(start));
  }

  // SL005: raw new/delete. The simulator's components own memory through
  // unique_ptr/containers; a raw owning pointer is a leak or double-free
  // waiting for a fault-injection path to find it.
  void CheckRawNewDelete(const std::string& line, int ln) {
    if (!InSrc(file_.path) && !InBench(file_.path)) return;
    size_t pos = FindWord(line, "new");
    while (pos != std::string_view::npos) {
      // `operator new` overloads are the arena implementation itself.
      const std::string_view before = TrimView(
          std::string_view(line).substr(0, pos));
      const bool is_operator =
          before.size() >= 8 && before.substr(before.size() - 8) == "operator";
      if (!is_operator) {
        Report("SL005", "new-ok", ln,
               "raw 'new' outside arena/device code",
               "use std::make_unique / a container; for private-constructor "
               "factories add `// simlint: new-ok (immediately owned)`");
      }
      pos = FindWord(line, "new", pos + 1);
    }
    pos = FindWord(line, "delete");
    while (pos != std::string_view::npos) {
      const std::string_view before =
          TrimView(std::string_view(line).substr(0, pos));
      const bool deleted_fn =
          !before.empty() && before.back() == '=';  // `= delete;`
      const bool is_operator =
          before.size() >= 8 && before.substr(before.size() - 8) == "operator";
      if (!deleted_fn && !is_operator) {
        Report("SL005", "new-ok", ln, "raw 'delete' outside arena/device code",
               "let unique_ptr/containers own the object");
      }
      pos = FindWord(line, "delete", pos + 1);
    }
  }

  // SL006: running += on a float/double accumulator. Floating addition is
  // not associative; once the sum dwarfs the addend, low bits silently drop
  // and the result depends on accumulation order. Fix: integer units (ns,
  // bytes), or Kahan compensation (see Histogram::AddSquares).
  void CheckFloatAccumulation(const std::string& line, int ln) {
    if (!InSrc(file_.path)) return;
    for (const char* op : {"+=", "-="}) {
      size_t pos = line.find(op);
      while (pos != std::string_view::npos) {
        const std::string_view target =
            TailIdentifier(std::string_view(line).substr(0, pos));
        if (!target.empty() &&
            float_vars_.count(std::string(target)) != 0) {
          Report("SL006", "float-ok", ln,
                 "running '" + std::string(op) + "' on float accumulator '" +
                     std::string(target) +
                     "': result depends on accumulation order",
                 "accumulate in integer units, or use Kahan compensation "
                 "(see rlsim::Histogram::AddSquares)");
        }
        pos = line.find(op, pos + 1);
      }
    }
  }

  // SL007: threading primitives inside the simulation core. A simulation is
  // single-threaded by contract — its determinism comes from the virtual
  // clock ordering every event; a thread, mutex or future inside one
  // reintroduces scheduling nondeterminism the whole design exists to
  // remove. Parallelism belongs one level up: fan out independent
  // simulations via src/harness/parallel_runner.
  void CheckThreadPrimitives(const std::string& line, int ln) {
    if (!InThreadBanScope(file_.path)) return;
    static constexpr const char* kBannedPrimitives[] = {
        "std::thread",        "std::jthread",
        "std::async",         "std::mutex",
        "std::timed_mutex",   "std::recursive_mutex",
        "std::shared_mutex",  "std::condition_variable",
        "std::lock_guard",    "std::scoped_lock",
        "std::unique_lock",   "std::shared_lock",
        "std::future",        "std::promise",
        "std::latch",         "std::barrier",
        "pthread_create",
    };
    for (const char* prim : kBannedPrimitives) {
      if (FindWord(line, prim) != std::string_view::npos) {
        Report("SL007", "thread-ok", ln,
               std::string("threading primitive '") + prim +
                   "' inside the single-threaded simulation core",
               "parallelise across simulations, not within one: fan whole "
               "(seed, config) jobs out via src/harness/parallel_runner");
      }
    }
  }

  // SL008: type punning on persistent/wire bytes. A reinterpret_cast, or a
  // memcpy whose source/destination is an object address (`&x`), reads or
  // writes an in-memory object *representation* — host endianness, padding
  // and all — where a stable byte format is expected. Byte-span copies
  // (`memcpy(dst, buf.data(), n)`) stay legal: bytes to bytes is
  // representation-free. The two sanctioned codecs (src/db/layout.h's
  // LoadScalar/StoreScalar, the src/shard wire Reader/PutU*) are exempt;
  // everything else routes through them or carries a `wire-ok` pragma.
  void CheckWireBytePunning(const std::string& line, int ln) {
    if (!InWirePunScope(file_.path) || InWirePunAllowlist(file_.path)) return;
    if (FindWord(line, "reinterpret_cast") != std::string_view::npos) {
      Report("SL008", "wire-ok", ln,
             "reinterpret_cast in a persistent/wire-format directory bakes "
             "the host's object representation into the byte format",
             "serialize through layout.h LoadScalar/StoreScalar or the wire "
             "codec; for genuinely representation-free uses add "
             "`// simlint: wire-ok (<why>)`");
    }
    size_t pos = FindWord(line, "memcpy");
    while (pos != std::string_view::npos) {
      const size_t open = line.find('(', pos);
      if (open != std::string_view::npos &&
          line.find('&', open) != std::string_view::npos) {
        Report("SL008", "wire-ok", ln,
               "memcpy through an object address (&x) in a persistent/"
               "wire-format directory copies host endianness and padding",
               "encode field-by-field via layout.h LoadScalar/StoreScalar "
               "or the wire codec's PutU16/32/64 helpers");
      }
      pos = FindWord(line, "memcpy", pos + 1);
    }
  }

  // Per-file declaration scan feeding SL003 (any unordered name declared in
  // this file, locals included) and SL006 (float/double variables).
  void CollectLocalDeclarations() {
    for (size_t i = 0; i < file_.code.size(); ++i) {
      const std::string& line = file_.code[i];
      for (const char* cont :
           {"unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset"}) {
        size_t pos = FindWord(line, cont);
        if (pos == std::string_view::npos) continue;
        const size_t open = pos + std::string_view(cont).size();
        if (open >= line.size() || line[open] != '<') continue;
        const size_t after = SkipAngles(line, open);
        if (after == std::string_view::npos) continue;
        // `unordered_map<K, V> name` — skip references/pointers to get the
        // declared identifier.
        size_t p = after;
        while (p < line.size() &&
               (line[p] == ' ' || line[p] == '&' || line[p] == '*')) {
          ++p;
        }
        size_t end = p;
        while (end < line.size() && IsIdentChar(line[end])) ++end;
        if (end > p) {
          local_unordered_[line.substr(p, end - p)] =
              file_.path + ":" + std::to_string(i + 1);
        }
      }
      for (const char* type : {"double", "float"}) {
        size_t pos = FindWord(line, type);
        while (pos != std::string_view::npos) {
          size_t p = pos + std::string_view(type).size();
          while (p < line.size() && line[p] == ' ') ++p;
          size_t end = p;
          while (end < line.size() && IsIdentChar(line[end])) ++end;
          // Declaration, not a cast or return type of a call: the name must
          // be followed by `=`, `;` or `{`.
          size_t q = end;
          while (q < line.size() && line[q] == ' ') ++q;
          if (end > p && q < line.size() &&
              (line[q] == '=' || line[q] == ';' || line[q] == '{')) {
            float_vars_.insert(line.substr(p, end - p));
          }
          pos = FindWord(line, type, pos + 1);
        }
      }
    }
  }

  // Apply pragma suppression (same line or line above) and produce final
  // findings with normalized-line CRCs.
  std::vector<Finding> Resolve() {
    std::vector<Finding> out;
    for (const PendingFinding& p : pending_) {
      if (lintlib::PragmaSuppressed(file_, p.line, p.tag)) continue;
      Finding f;
      f.rule = p.rule;
      f.severity = SeverityFor(p.rule);
      f.file = file_.path;
      f.line = p.line;
      f.message = p.message;
      f.hint = p.hint;
      f.crc = NormalizedCrc(file_.code[p.line - 1], &f.normalized);
      out.push_back(std::move(f));
    }
    std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    return out;
  }

  const SourceFile& file_;
  const ProjectIndex& index_;
  std::map<std::string, std::string> local_unordered_;  // name -> file:line
  std::vector<PendingFinding> pending_;
  std::set<std::string> float_vars_;
};

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"SL001", "wall-clock-or-entropy", "error",
       "ambient time/randomness source (system_clock, rand, random_device, "
       "time(), ...) outside the simulator clock/Rng"},
      {"SL002", "ambient-state", "error",
       "getenv or mutable static state in src/sim, src/rapilog, src/faults"},
      {"SL003", "unordered-iteration", "error",
       "iteration over an unordered_{map,set} member in src/ without a "
       "sorted snapshot"},
      {"SL004", "pointer-ordering", "error",
       "ordered container or comparator keyed by pointer value"},
      {"SL005", "raw-new-delete", "warning",
       "raw new/delete outside arena/device code"},
      {"SL006", "float-accumulation", "warning",
       "+=/-= on a float/double accumulator without Kahan or integer units"},
      {"SL007", "thread-primitives", "error",
       "std::thread/async/mutex (and friends) in src/ outside "
       "src/harness/parallel_runner"},
      {"SL008", "wire-byte-punning", "error",
       "reinterpret_cast or memcpy-through-&object in persistent/wire "
       "format directories outside the sanctioned codecs"},
  };
  return kRules;
}

void ProjectIndex::AddFile(const SourceFile& file) {
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const char* cont :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      size_t pos = FindWord(line, cont);
      if (pos == std::string_view::npos) continue;
      const size_t open = pos + std::string_view(cont).size();
      if (open >= line.size() || line[open] != '<') continue;
      const size_t after = SkipAngles(line, open);
      if (after == std::string_view::npos) continue;
      size_t p = after;
      while (p < line.size() &&
             (line[p] == ' ' || line[p] == '&' || line[p] == '*')) {
        ++p;
      }
      size_t end = p;
      while (end < line.size() && IsIdentChar(line[end])) ++end;
      // Only `name_`-suffixed identifiers go into the cross-file index:
      // that is the repo's member naming convention, and indexing plain
      // locals globally would flag unrelated same-named variables.
      if (end > p && line[end - 1] == '_') {
        unordered_members[line.substr(p, end - p)] =
            file.path + ":" + std::to_string(i + 1);
      }
    }
  }
}

std::vector<Finding> LintFile(const SourceFile& file,
                              const ProjectIndex& index) {
  return Linter(file, index).Run();
}

std::vector<Finding> LintSource(std::string path, std::string_view contents) {
  SourceFile file = StripSource(std::move(path), contents);
  ProjectIndex index;
  index.AddFile(file);
  return LintFile(file, index);
}

}  // namespace simlint

// lintlib: the scanning + reporting core shared by this repo's static
// checkers (tools/simlint, tools/rapicheck).
//
// Each checker owns its rules; what they share is everything around the
// rules: the lexical strip pass that blanks comments and literal contents
// (so rules never fire on prose or fixture snippets), pragma harvesting,
// CRC-keyed baselines robust to line drift, the deterministic file walk,
// and the text/JSON/GitHub-annotation output formats. Keeping that here
// means a new checker is only its model + rule table.
//
// Tool identity is threaded through explicitly: StripSource takes the
// pragma marker ("simlint:" / "rapicheck:"), baselines and GitHub output
// take the tool name, so each checker's artifacts stay self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lintlib {

struct Finding {
  std::string rule;      // "SL003", "RC201"
  std::string severity;  // "error" | "warning"
  std::string file;
  int line = 0;  // 1-based
  std::string message;
  std::string hint;        // fix-it suggestion
  uint32_t crc = 0;        // CRC32 of the normalized source line
  std::string normalized;  // whitespace-collapsed, comment/string-stripped
};

struct RuleInfo {
  const char* id;
  const char* name;
  const char* severity;
  const char* summary;
};

// A source file after lexical preprocessing. `code[i]` is line i with
// comments and string/char literal *contents* blanked (quotes preserved).
// `pragmas[i]` holds the `<marker> tag1 tag2` tags found on line i.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::vector<std::string>> pragmas;
};

// `pragma_marker` is the comment prefix that introduces suppression tags,
// e.g. "simlint:". Tags stop at a parenthesized justification.
SourceFile StripSource(std::string path, std::string_view contents,
                       std::string_view pragma_marker);

// CRC32 (Castagnoli, via src/sim/crc32) of the whitespace-normalized line.
uint32_t NormalizedCrc(std::string_view stripped_line,
                       std::string* normalized_out = nullptr);

// True if a pragma with `tag` suppresses a finding on `line` (1-based):
// same line, or reachable by walking up through the contiguous block of
// comment-only lines directly above it.
bool PragmaSuppressed(const SourceFile& file, int line, std::string_view tag);

// --- Shared text helpers ---------------------------------------------------

bool IsIdentChar(char c);
// True if `text[pos..]` starts with `word` at identifier boundaries.
bool WordAt(std::string_view text, size_t pos, std::string_view word);
// First boundary occurrence of `word` in `text`, or npos.
size_t FindWord(std::string_view text, std::string_view word, size_t from = 0);
// True if `path` starts with directory prefix `dir` ("src/sim" matches
// "src/sim/foo.h" and "src/sim" itself, not "src/simx.h"). "./" accepted.
bool UnderDir(std::string_view path, std::string_view dir);
// True if `dir` appears as a directory run anywhere in `path`: lets rules
// scoped to "src/shard" also apply inside fixture trees like
// "tests/rapicheck_fixtures/rc201/src/shard/node.cc".
bool ContainsDir(std::string_view path, std::string_view dir);
// One past the matching '>' for the '<' at text[pos], or npos.
size_t SkipAngles(std::string_view text, size_t pos);
std::string_view TrimView(std::string_view s);
// Final identifier of an expression like "table_", "this->cache_".
std::string_view TailIdentifier(std::string_view expr);

// --- Baseline -------------------------------------------------------------

struct BaselineEntry {
  std::string rule;
  std::string file;
  uint32_t crc = 0;
  int count = 0;  // findings sharing this (rule, file, crc) key
};

// Deterministic text form (sorted by rule, file, crc). Parse(Serialize(x))
// then Serialize again is byte-identical. `tool` names the checker in the
// header comment ("simlint", "rapicheck").
std::string SerializeBaseline(const std::vector<Finding>& findings,
                              std::string_view tool);
std::string SerializeBaseline(const std::vector<BaselineEntry>& entries,
                              std::string_view tool);
bool ParseBaseline(std::string_view text, std::vector<BaselineEntry>* out,
                   std::string* error);
// Removes findings covered by the baseline (each entry suppresses up to
// `count` findings with the same key). Leftover findings are "new".
std::vector<Finding> ApplyBaseline(std::vector<Finding> findings,
                                   const std::vector<BaselineEntry>& baseline);

// --- Output ---------------------------------------------------------------

std::string FormatText(const std::vector<Finding>& findings);
std::string FormatJson(const std::vector<Finding>& findings);
// GitHub Actions workflow-command annotations (::error file=...); `tool`
// prefixes the annotation title ("simlint SL003").
std::string FormatGithub(const std::vector<Finding>& findings,
                         std::string_view tool);

// --- File discovery -------------------------------------------------------

// Deterministic file discovery: recursive *.h/*.cc/*.cpp/*.hpp walk,
// lexicographically sorted, `build` and dot-directories skipped. On error
// sets *error and returns empty.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths,
                                      std::string* error);
bool ReadFile(const std::string& path, std::string* out);

}  // namespace lintlib

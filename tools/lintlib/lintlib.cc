#include "tools/lintlib/lintlib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/sim/crc32.h"

namespace lintlib {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool WordAt(std::string_view text, size_t pos, std::string_view word) {
  if (pos + word.size() > text.size()) return false;
  if (text.substr(pos, word.size()) != word) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + word.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

size_t FindWord(std::string_view text, std::string_view word, size_t from) {
  for (size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (WordAt(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

bool UnderDir(std::string_view path, std::string_view dir) {
  // Accept both "src/sim/..." and "./src/sim/...".
  if (path.substr(0, 2) == "./") path.remove_prefix(2);
  if (path.substr(0, dir.size()) != dir) return false;
  return path.size() == dir.size() || path[dir.size()] == '/';
}

bool ContainsDir(std::string_view path, std::string_view dir) {
  if (path.substr(0, 2) == "./") path.remove_prefix(2);
  for (size_t pos = path.find(dir); pos != std::string_view::npos;
       pos = path.find(dir, pos + 1)) {
    const bool left_ok = pos == 0 || path[pos - 1] == '/';
    const size_t end = pos + dir.size();
    const bool right_ok = end == path.size() || path[end] == '/';
    if (left_ok && right_ok) return true;
  }
  return false;
}

size_t SkipAngles(std::string_view text, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view TailIdentifier(std::string_view expr) {
  expr = TrimView(expr);
  size_t end = expr.size();
  while (end > 0 && IsIdentChar(expr[end - 1])) --end;
  return expr.substr(end);
}

SourceFile StripSource(std::string path, std::string_view contents,
                       std::string_view pragma_marker) {
  SourceFile out;
  out.path = std::move(path);

  // Split into raw lines first (keeps \r out of the code view).
  size_t start = 0;
  while (start <= contents.size()) {
    size_t nl = contents.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < contents.size()) {
        out.raw.emplace_back(contents.substr(start));
      }
      break;
    }
    std::string_view line = contents.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.raw.emplace_back(line);
    start = nl + 1;
  }

  // Lexical pass: blank comment and literal contents, carrying block-comment
  // state across lines. Pragmas are harvested from comment text.
  bool in_block_comment = false;
  for (const std::string& rawline : out.raw) {
    std::string code;
    code.reserve(rawline.size());
    std::vector<std::string> tags;
    std::string comment_text;
    for (size_t i = 0; i < rawline.size();) {
      const char c = rawline[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < rawline.size() && rawline[i + 1] == '/') {
          in_block_comment = false;
          i += 2;
        } else {
          comment_text.push_back(c);
          ++i;
        }
        continue;
      }
      if (c == '/' && i + 1 < rawline.size() && rawline[i + 1] == '/') {
        comment_text.append(rawline.substr(i + 2));
        break;  // rest of line is comment
      }
      if (c == '/' && i + 1 < rawline.size() && rawline[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < rawline.size() && rawline[i + 1] == '"') {
        // Raw string literal: skip to the closing )delim" — for the common
        // single-line case; multi-line raw strings blank to end of line and
        // the next lines are handled as code (acceptable for this repo).
        const size_t open_paren = rawline.find('(', i + 2);
        if (open_paren != std::string::npos) {
          const std::string delim =
              ")" + rawline.substr(i + 2, open_paren - (i + 2)) + "\"";
          const size_t close = rawline.find(delim, open_paren);
          code.append("\"\"");
          if (close != std::string::npos) {
            i = close + delim.size();
          } else {
            i = rawline.size();
          }
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code.push_back(quote);
        ++i;
        while (i < rawline.size()) {
          if (rawline[i] == '\\') {
            i += 2;
            continue;
          }
          if (rawline[i] == quote) {
            ++i;
            break;
          }
          ++i;
        }
        code.push_back(quote);
        continue;
      }
      code.push_back(c);
      ++i;
    }
    // Harvest `<marker> tag1 tag2` from the comment text.
    const size_t mark = comment_text.find(pragma_marker);
    if (mark != std::string::npos) {
      size_t p = mark + pragma_marker.size();
      while (p < comment_text.size()) {
        while (p < comment_text.size() &&
               (comment_text[p] == ' ' || comment_text[p] == ',')) {
          ++p;
        }
        size_t end = p;
        while (end < comment_text.size() &&
               (std::isalnum(static_cast<unsigned char>(comment_text[end])) !=
                    0 ||
                comment_text[end] == '-')) {
          ++end;
        }
        if (end == p) break;
        tags.push_back(comment_text.substr(p, end - p));
        p = end;
        // Tags stop at the parenthesized justification.
        if (p < comment_text.size() && comment_text[p] == '(') break;
      }
    }
    out.code.push_back(std::move(code));
    out.pragmas.push_back(std::move(tags));
  }
  return out;
}

uint32_t NormalizedCrc(std::string_view stripped_line,
                       std::string* normalized_out) {
  std::string norm;
  norm.reserve(stripped_line.size());
  bool pending_space = false;
  for (char c : stripped_line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !norm.empty();
      continue;
    }
    if (pending_space) {
      norm.push_back(' ');
      pending_space = false;
    }
    norm.push_back(c);
  }
  const uint32_t crc = rlsim::Crc32c(
      {reinterpret_cast<const uint8_t*>(norm.data()), norm.size()});
  if (normalized_out != nullptr) *normalized_out = std::move(norm);
  return crc;
}

bool PragmaSuppressed(const SourceFile& file, int line, std::string_view tag) {
  for (int ln = line; ln >= 1; --ln) {
    if (ln <= static_cast<int>(file.pragmas.size())) {
      for (const std::string& t : file.pragmas[ln - 1]) {
        if (t == tag) return true;
      }
    }
    if (ln == line) continue;  // always step to the line above the finding
    // Keep walking only while the line is comment-only (stripped code is
    // blank but the raw line is not).
    const std::string_view code = TrimView(file.code[ln - 1]);
    const std::string_view raw = TrimView(file.raw[ln - 1]);
    if (!code.empty() || raw.empty()) break;
  }
  return false;
}

// --- Baseline -------------------------------------------------------------

namespace {

std::string BaselineKey(std::string_view rule, std::string_view file,
                        uint32_t crc) {
  char key[512];
  std::snprintf(key, sizeof(key), "%.*s %.*s %08x",
                static_cast<int>(rule.size()), rule.data(),
                static_cast<int>(file.size()), file.data(), crc);
  return key;
}

std::string SerializeCounts(const std::map<std::string, int>& counts,
                            std::string_view tool) {
  const std::string name(tool);
  std::string out = "# " + name +
                    " baseline v1: rule path line-crc count\n"
                    "# Regenerate with: " +
                    name + " --write-baseline <this file> <paths>\n";
  for (const auto& [key, count] : counts) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string SerializeBaseline(const std::vector<Finding>& findings,
                              std::string_view tool) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) {
    ++counts[BaselineKey(f.rule, f.file, f.crc)];
  }
  return SerializeCounts(counts, tool);
}

std::string SerializeBaseline(const std::vector<BaselineEntry>& entries,
                              std::string_view tool) {
  std::map<std::string, int> counts;
  for (const BaselineEntry& e : entries) {
    counts[BaselineKey(e.rule, e.file, e.crc)] += e.count;
  }
  return SerializeCounts(counts, tool);
}

bool ParseBaseline(std::string_view text, std::vector<BaselineEntry>* out,
                   std::string* error) {
  out->clear();
  int lineno = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string line(TrimView(text.substr(start, nl - start)));
    start = nl + 1;
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    BaselineEntry e;
    char rule[32], path[400];
    unsigned crc = 0;
    if (std::sscanf(line.c_str(), "%31s %399s %8x %d", rule, path, &crc,
                    &e.count) != 4) {
      if (error != nullptr) {
        *error = "baseline line " + std::to_string(lineno) +
                 ": expected 'rule path crc count', got: " + line;
      }
      return false;
    }
    e.rule = rule;
    e.file = path;
    e.crc = crc;
    out->push_back(std::move(e));
  }
  return true;
}

std::vector<Finding> ApplyBaseline(
    std::vector<Finding> findings, const std::vector<BaselineEntry>& baseline) {
  std::map<std::string, int> budget;
  for (const BaselineEntry& e : baseline) {
    budget[BaselineKey(e.rule, e.file, e.crc)] += e.count;
  }
  std::vector<Finding> fresh;
  for (Finding& f : findings) {
    const std::string key = BaselineKey(f.rule, f.file, f.crc);
    auto it = budget.find(key);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(std::move(f));
  }
  return fresh;
}

// --- Output ---------------------------------------------------------------

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.severity + ": " + f.message + "\n";
    if (!f.hint.empty()) {
      out += "    fix: " + f.hint + "\n";
    }
  }
  return out;
}

namespace {
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}
}  // namespace

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = "{\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    char crcbuf[16];
    std::snprintf(crcbuf, sizeof(crcbuf), "%08x", f.crc);
    out += "{\"rule\":\"" + JsonEscape(f.rule) + "\",\"severity\":\"" +
           JsonEscape(f.severity) + "\",\"file\":\"" + JsonEscape(f.file) +
           "\",\"line\":" + std::to_string(f.line) + ",\"message\":\"" +
           JsonEscape(f.message) + "\",\"hint\":\"" + JsonEscape(f.hint) +
           "\",\"crc\":\"" + crcbuf + "\"}";
  }
  out += "],\"total\":" + std::to_string(findings.size()) + "}\n";
  return out;
}

std::string FormatGithub(const std::vector<Finding>& findings,
                         std::string_view tool) {
  std::string out;
  for (const Finding& f : findings) {
    out += std::string("::") + (f.severity == "error" ? "error" : "warning") +
           " file=" + f.file + ",line=" + std::to_string(f.line) +
           ",title=" + std::string(tool) + " " + f.rule + "::" + f.message +
           " — " + f.hint + "\n";
  }
  return out;
}

// --- File discovery -------------------------------------------------------

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths,
                                      std::string* error) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        const fs::path& p = it->path();
        const std::string name = p.filename().string();
        if (it->is_directory() &&
            (name == "build" || name.substr(0, 1) == ".")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(p)) {
          files.push_back(p.generic_string());
        }
      }
      if (ec) {
        *error = "cannot walk " + path + ": " + ec.message();
        return {};
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(fs::path(path).generic_string());
    } else {
      *error = "no such file or directory: " + path;
      return {};
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace lintlib
